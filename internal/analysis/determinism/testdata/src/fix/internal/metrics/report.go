// Package metrics is a determinism fixture for the report scope: map
// iteration must be ordered, but wall-clock reads are legal here.
package metrics

import (
	"fmt"
	"math/rand"
	"time"
)

func PrintAll(m map[string]int) {
	for k, v := range m { // want `a call whose effects may depend on iteration order`
		fmt.Println(k, v)
	}
}

func Stamp() int64 {
	return time.Now().Unix() // ok: wall clock is legal outside simulation packages
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-seeded global source`
}

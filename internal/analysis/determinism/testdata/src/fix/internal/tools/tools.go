// Package tools is out of both determinism scopes: nothing here is flagged.
package tools

import "time"

func FirstKey(m map[uint64]int) uint64 {
	for k := range m { // ok: out of scope
		return k
	}
	return 0
}

func Clock() int64 {
	return time.Now().UnixNano() // ok: out of scope
}

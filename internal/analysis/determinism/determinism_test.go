package determinism_test

import (
	"testing"

	"repro/internal/analysis/determinism"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{determinism.Analyzer})
}

// Package determinism implements the pdede-lint analyzer that keeps
// simulation results bit-identical across runs.
//
// The simulator's core guarantee — same trace + same seed ⇒ same MPKI, same
// divergence reports, same goldens — dies through three Go-specific leaks:
// map iteration order, wall-clock reads, and the process-seeded global
// math/rand source. The differential oracle (internal/oracle) catches the
// resulting drift at runtime when it is lucky; this analyzer makes the
// whole class unrepresentable at lint time.
//
// Checks, in simulation-affecting packages (see SimScope/ReportScope):
//
//   - any use of time.Now / time.Since / time.Until;
//   - any call through math/rand's (or math/rand/v2's) global source —
//     seeded per-process, so two runs disagree; explicit *rand.Rand values
//     built from internal/rng seeds remain fine;
//   - `range` over a map whose body is order-sensitive: anything beyond
//     commutative accumulation (counters, +=, map inserts, delete) escapes
//     iteration order into results. The one blessed exception is the
//     collect-then-sort idiom (append keys, sort, iterate the slice).
//     Selecting a winner (max/min) inside a map range is the classic
//     simulator bug — ties break differently per run — and is flagged even
//     though it looks like accumulation.
//
// Escape hatch: `//pdede:nondet-ok <reason>` on the offending line or the
// line above, for code whose nondeterminism provably cannot reach results.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// SimScope is the import-path suffixes of packages whose state feeds
// predictions, metrics, or reports. Wall-clock and global-rand bans apply
// here.
var SimScope = []string{
	"internal/btb",
	"internal/pdede",
	"internal/core",
	"internal/predictor",
	"internal/oracle",
	"internal/shotgun",
	"internal/multilevel",
	"internal/addr",
	"internal/isa",
}

// ReportScope extends SimScope for the map-iteration check: these packages
// render tables, JSON exports and keep-going reports whose bytes must be
// stable across runs. The cmd mains are included — they are where tables
// actually reach stdout and files.
var ReportScope = []string{
	"internal/metrics",
	"internal/experiments",
	"internal/perf",
	"internal/serve",
	"cmd/pdede-analyze",
	"cmd/pdede-bench",
	"cmd/pdede-experiments",
	"cmd/pdede-serve",
	"cmd/pdede-sim",
	"cmd/pdede-trace",
}

// Analyzer is the determinism check.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and order-sensitive map iteration " +
		"in simulation and report packages, keeping replays bit-identical",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	sim := pass.InScope(SimScope)
	report := sim || pass.InScope(ReportScope)
	if !report {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sim {
					checkClockAndRand(pass, file, n)
				} else {
					checkGlobalRand(pass, file, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

// pkgOf resolves a selector's base to an imported package, or nil.
func pkgOf(pass *lintkit.Pass, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// wallClockFuncs are the time package entry points that read the host
// clock. time.Duration arithmetic and formatting stay legal.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand names that do NOT touch the global
// source: constructing an explicit, seeded generator is the deterministic
// pattern internal/rng builds on.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkClockAndRand(pass *lintkit.Pass, file *ast.File, sel *ast.SelectorExpr) {
	pkg := pkgOf(pass, sel)
	if pkg == nil {
		return
	}
	if pkg.Path() == "time" && wallClockFuncs[sel.Sel.Name] {
		if pass.NodeHasDirective(file, sel, "nondet-ok") {
			return
		}
		pass.Reportf(sel.Pos(), "wall-clock read time.%s in a simulation package: results must depend only on trace and seed", sel.Sel.Name)
		return
	}
	checkGlobalRandPkg(pass, file, sel, pkg)
}

func checkGlobalRand(pass *lintkit.Pass, file *ast.File, sel *ast.SelectorExpr) {
	pkg := pkgOf(pass, sel)
	if pkg == nil {
		return
	}
	checkGlobalRandPkg(pass, file, sel, pkg)
}

func checkGlobalRandPkg(pass *lintkit.Pass, file *ast.File, sel *ast.SelectorExpr, pkg *types.Package) {
	if pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2" {
		return
	}
	if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
		return // rand.Rand, rand.Source: types are fine
	}
	if randConstructors[sel.Sel.Name] {
		return
	}
	if pass.NodeHasDirective(file, sel, "nondet-ok") {
		return
	}
	pass.Reportf(sel.Pos(), "rand.%s draws from the process-seeded global source; use an explicit generator seeded from the run seed (internal/rng)", sel.Sel.Name)
}

// checkMapRange flags order-sensitive iteration over a map.
func checkMapRange(pass *lintkit.Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.NodeHasDirective(file, rng, "nondet-ok") {
		return
	}
	if isSortedKeyCollection(pass, file, rng) {
		return
	}
	w := &bodyWalker{pass: pass, locals: map[types.Object]bool{}}
	w.noteLoopVar(rng.Key)
	w.noteLoopVar(rng.Value)
	if why := w.orderSensitive(rng.Body.List); why != "" {
		pass.Reportf(rng.Pos(), "nondeterministic map iteration: %s; sort the keys first or keep the body order-insensitive", why)
	}
}

// bodyWalker classifies a map-range body as order-insensitive or not.
type bodyWalker struct {
	pass   *lintkit.Pass
	locals map[types.Object]bool
}

func (w *bodyWalker) noteLoopVar(e ast.Expr) {
	if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
		if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
			w.locals[obj] = true
		}
	}
}

// orderSensitive returns a reason string when any statement lets iteration
// order escape the loop, and "" when the body is pure accumulation.
func (w *bodyWalker) orderSensitive(stmts []ast.Stmt) string {
	for _, s := range stmts {
		if why := w.stmt(s); why != "" {
			return why
		}
	}
	return ""
}

func (w *bodyWalker) stmt(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return ""
	case *ast.AssignStmt:
		return w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						if obj := w.pass.TypesInfo.Defs[n]; obj != nil {
							w.locals[obj] = true
						}
					}
				}
			}
			return ""
		}
		return "declaration in body"
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return ""
				}
			}
		}
		return "a call whose effects may depend on iteration order"
	case *ast.IfStmt:
		if s.Init != nil {
			if why := w.stmt(s.Init); why != "" {
				return why
			}
		}
		if why := w.orderSensitive(s.Body.List); why != "" {
			// An if selecting which key wins is the max/min-over-map bug.
			if isComparison(s.Cond) && why == reasonOuterAssign {
				return "selecting a winner by comparison breaks ties in iteration order"
			}
			return why
		}
		if s.Else != nil {
			return w.stmt(s.Else)
		}
		return ""
	case *ast.BlockStmt:
		return w.orderSensitive(s.List)
	case *ast.RangeStmt:
		// A nested range over a slice/array of the value is still local;
		// nested map ranges are checked independently by the inspector.
		w.noteLoopVar(s.Key)
		w.noteLoopVar(s.Value)
		return w.orderSensitive(s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil {
			if why := w.stmt(s.Init); why != "" {
				return why
			}
		}
		return w.orderSensitive(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if why := w.orderSensitive(cc.Body); why != "" {
					return why
				}
			}
		}
		return ""
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE && s.Label == nil {
			return ""
		}
		return "break/goto makes the processed subset depend on iteration order"
	case *ast.ReturnStmt:
		return "returning from inside the loop exposes whichever key came first"
	default:
		return "order-sensitive statement"
	}
}

const reasonOuterAssign = "plain assignment to a variable that outlives the loop keeps the last-iterated key"

func (w *bodyWalker) assign(s *ast.AssignStmt) string {
	switch s.Tok {
	case token.DEFINE:
		for _, l := range s.Lhs {
			w.noteLoopVar(l)
		}
		return ""
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return ""
	case token.ASSIGN:
		for _, l := range s.Lhs {
			if !w.insensitiveLHS(l) {
				return reasonOuterAssign
			}
		}
		return ""
	default:
		return "order-sensitive assignment"
	}
}

// insensitiveLHS: writes into a map cell (keys are unique per iteration) or
// into a variable local to the loop body do not leak order.
func (w *bodyWalker) insensitiveLHS(l ast.Expr) bool {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return true
		}
		return w.locals[w.pass.TypesInfo.ObjectOf(l)]
	case *ast.IndexExpr:
		t := w.pass.TypesInfo.TypeOf(l.X)
		if t == nil {
			return false
		}
		_, isMap := t.Underlying().(*types.Map)
		return isMap
	default:
		return false
	}
}

func isComparison(e ast.Expr) bool {
	if b, ok := e.(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	}
	return false
}

// isSortedKeyCollection recognizes the blessed idiom
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or slices.Sort, sort.Slice, ...
//
// by requiring the body to be a single self-append involving the key and a
// sort call on the same slice later in the enclosing block.
func isSortedKeyCollection(pass *lintkit.Pass, file *ast.File, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(first) != pass.TypesInfo.ObjectOf(dst) {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	return sortedLaterInBlock(pass, file, rng, dstObj)
}

// sortedLaterInBlock scans the statements after rng in its innermost
// enclosing block for a sort.*/slices.* call taking the collected slice.
func sortedLaterInBlock(pass *lintkit.Pass, file *ast.File, rng *ast.RangeStmt, slice types.Object) bool {
	var found bool
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		idx := -1
		for i, s := range block.List {
			if s == ast.Stmt(rng) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return true
		}
		for _, s := range block.List[idx+1:] {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			pkg := pkgOf(pass, sel)
			if pkg == nil || (pkg.Path() != "sort" && pkg.Path() != "slices") {
				continue
			}
			for _, a := range call.Args {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == slice {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load type-checks the packages matching patterns, resolving them relative
// to dir (the module to analyze; "" means the current directory). It shells
// out to `go list -export -deps`, which compiles (or reuses from the build
// cache) export data for every dependency, then type-checks the matched
// packages from source against that export data — no network, no
// third-party loader.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Imports,ImportMap,Standard,DepOnly,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintkit: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintkit: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lintkit: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	deps := newDepImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, deps, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one target package from source.
func typecheck(fset *token.FileSet, deps *depImporter, lp *listPackage) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %w", err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: &mapImporter{deps: deps, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", buildArch()),
	}
	if lp.Module != nil && lp.Module.GoVersion != "" {
		conf.GoVersion = "go" + lp.Module.GoVersion
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		GoFiles:    paths,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// depImporter resolves canonical import paths to type information by
// reading the compiler's export data via the standard gc importer.
type depImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newDepImporter(fset *token.FileSet, exports map[string]string) *depImporter {
	d := &depImporter{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := d.exports[path]
		if !ok {
			return nil, fmt.Errorf("lintkit: no export data for %q", path)
		}
		return os.Open(file)
	}
	d.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return d
}

func (d *depImporter) importCanonical(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return d.gc.ImportFrom(path, "", 0)
}

// mapImporter applies one package's vendor/module ImportMap before
// delegating to the shared dependency importer.
type mapImporter struct {
	deps      *depImporter
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.deps.importCanonical(path)
}

// TypecheckFiles type-checks one package given explicit file paths and a
// canonical-path export lookup — the `go vet -vettool` entry point, where
// cmd/go supplies GoFiles, ImportMap and PackageFile in the vet config.
func TypecheckFiles(importPath, goVersion string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	deps := newDepImporter(fset, packageFile)
	lp := &listPackage{
		ImportPath: importPath,
		GoFiles:    goFiles,
		ImportMap:  importMap,
	}
	if goVersion != "" {
		lp.Module = &struct{ GoVersion string }{GoVersion: strings.TrimPrefix(goVersion, "go")}
	}
	return typecheck(fset, deps, lp)
}

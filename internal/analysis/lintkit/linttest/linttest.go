// Package linttest runs lintkit analyzers over fixture modules and checks
// their diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a small self-contained Go module (its own go.mod, usually
// named "fix") living under the analyzer's testdata/src directory. Nesting
// a module keeps fixtures out of the repository build while letting the
// loader compile them exactly like real code. Fixture packages mirror the
// real tree's import-path suffixes (e.g. fix/internal/btb) so the
// analyzers' package-scoping applies unchanged.
//
// Expectations are written on the offending line:
//
//	for k := range m { // want `map iteration`
//
// The backquoted (or double-quoted) string is a regexp matched against the
// diagnostic message. Multiple expectations may share one line. Lines with
// no comment must produce no diagnostic.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit"
)

// wantRe matches one expectation inside a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module rooted at dir, applies the analyzers to the
// packages matching patterns (default ./...), and reports any mismatch
// between diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, analyzers []*lintkit.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lintkit.Load(abs, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	diags, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.GoFiles {
			ws, err := parseWants(file)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation satisfied by d.
func claim(wants []*expectation, d lintkit.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the `// want` expectations from one fixture file.
func parseWants(path string) ([]*expectation, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want`") {
				continue
			}
			text = strings.TrimSpace(strings.TrimPrefix(text, "want"))
			pos := fset.Position(c.Slash)
			for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
				raw := m[1]
				if raw == "" {
					raw = m[2]
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", path, pos.Line, raw, err)
				}
				wants = append(wants, &expectation{file: path, line: pos.Line, re: re, raw: raw})
			}
		}
	}
	return wants, nil
}

// WriteModule materializes a fixture module from a map of relative path →
// contents under t.TempDir() and returns its root. It is used by tests that
// need to synthesize a module on the fly (e.g. seeding a violation into an
// otherwise clean tree) rather than committing it under testdata.
func WriteModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// Package lintkit is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository stays dependency-free.
//
// It provides the three pieces a custom linter needs:
//
//   - Analyzer/Pass/Diagnostic — the per-package analysis model. An
//     Analyzer receives one fully type-checked package per Pass and reports
//     position-anchored diagnostics.
//   - a loader (Load) that type-checks packages of any module offline by
//     shelling out to `go list -export` and reading the compiler's export
//     data for dependencies — the same data `go vet` hands its tools.
//   - directive handling for the repository's `//pdede:` comment
//     directives (`//pdede:hot`, `//pdede:bitwidth-ok`, ...).
//
// The concrete analyzers live in sibling packages (determinism, hotpath,
// bitwidth, auditcontract, atomicwrite); cmd/pdede-lint drives them both
// standalone and as a `go vet -vettool`.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run is invoked once per loaded
// package with a fully populated Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. It must
	// be a valid identifier.
	Name string
	// Doc is a one-paragraph description: first line is a summary.
	Doc string
	// Run executes the check. Diagnostics go through Pass.Report/Reportf;
	// the error return is for analysis failures (bad configuration,
	// impossible state), not findings.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	// directives caches per-file parsed //pdede: directives.
	directives map[*ast.File][]Directive
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// PathHasSuffix reports whether an import path ends with suffix on a path
// component boundary ("repro/internal/btb" matches "internal/btb" but
// "internal/btbx" does not). It is how analyzers scope themselves to the
// simulator packages while remaining testable against fixture modules that
// mirror the real layout under a different module name.
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}

// InScope reports whether the pass's package matches any of the import-path
// suffixes.
func (p *Pass) InScope(suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(p.Pkg.Path(), s) {
			return true
		}
	}
	return false
}

// Directive is one parsed `//pdede:name args` comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "hot", "bitwidth-ok"
	Args string // remainder of the line, space-trimmed
}

// DirectivePrefix is the comment marker all repository lint directives use.
// Like //go: directives, they must start at the beginning of the comment
// with no space after //.
const DirectivePrefix = "//pdede:"

// FileDirectives returns every //pdede: directive in file, parsed.
func (p *Pass) FileDirectives(file *ast.File) []Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File][]Directive)
	}
	if ds, ok := p.directives[file]; ok {
		return ds
	}
	var ds []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			name, args, _ := strings.Cut(rest, " ")
			ds = append(ds, Directive{Pos: c.Slash, Name: name, Args: strings.TrimSpace(args)})
		}
	}
	p.directives[file] = ds
	return ds
}

// FuncHasDirective reports whether fn (a declaration in file) carries the
// named //pdede: directive in its doc comment.
func (p *Pass) FuncHasDirective(file *ast.File, fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, DirectivePrefix+name) {
			return true
		}
	}
	return false
}

// NodeHasDirective reports whether the named directive appears in file on
// the line of node's position or the line immediately above it — the escape
// hatch form, e.g.
//
//	//pdede:bitwidth-ok splitmix64 avalanche constants
//	x ^= x >> 31
func (p *Pass) NodeHasDirective(file *ast.File, node ast.Node, name string) bool {
	line := p.Fset.Position(node.Pos()).Line
	for _, d := range p.FileDirectives(file) {
		if d.Name != name {
			continue
		}
		dl := p.Fset.Position(d.Pos).Line
		if dl == line || dl == line-1 {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run executes every analyzer over every package and returns the combined,
// sorted diagnostics. Diagnostics anchored in _test.go files are dropped:
// the contracts the suite enforces are about simulator code, and `go vet
// -vettool` passes test variants through the same entry point.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					if strings.HasSuffix(d.Pos.Filename, "_test.go") {
						return
					}
					out = append(out, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

package lintkit_test

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit"
)

// TestLoadRealPackage exercises the offline loader end-to-end against this
// repository: go list -export for dependency export data, source
// type-checking for the target.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := lintkit.Load("../../..", "./internal/addr")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Fatal("package not type-checked")
	}
	if !lintkit.PathHasSuffix(pkg.ImportPath, "internal/addr") {
		t.Fatalf("unexpected import path %q", pkg.ImportPath)
	}
	if pkg.Types.Scope().Lookup("VABits") == nil {
		t.Fatal("addr.VABits not in scope: type-check incomplete")
	}
	// TypesInfo must be populated: every file identifier resolves.
	if len(pkg.TypesInfo.Defs) == 0 || len(pkg.TypesInfo.Uses) == 0 {
		t.Fatal("TypesInfo empty")
	}
}

// TestLoadResolvesDeps checks that a package importing others in the module
// type-checks against their export data.
func TestLoadResolvesDeps(t *testing.T) {
	pkgs, err := lintkit.Load("../../..", "./internal/btb")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	var sawAddr bool
	for _, imp := range pkgs[0].Types.Imports() {
		if lintkit.PathHasSuffix(imp.Path(), "internal/addr") {
			sawAddr = true
			if imp.Scope().Lookup("Mix64") == nil {
				t.Fatal("addr export data incomplete: Mix64 missing")
			}
		}
	}
	if !sawAddr {
		t.Fatal("btb does not see its addr import")
	}
}

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/btb", "internal/btb", true},
		{"internal/btb", "internal/btb", true},
		{"fix/internal/btb", "internal/btb", true},
		{"repro/internal/btbx", "internal/btb", false},
		{"repro/xinternal/btb", "internal/btb", false},
		{"repro/internal/btb/deep", "internal/btb", false},
	}
	for _, c := range cases {
		if got := lintkit.PathHasSuffix(c.path, c.suffix); got != c.want {
			t.Errorf("PathHasSuffix(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestSortDiagnosticsAndString(t *testing.T) {
	ds := []lintkit.Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 2, Column: 1}, Analyzer: "x", Message: "second"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 3}, Analyzer: "x", Message: "first"},
		{Pos: token.Position{Filename: "b.go", Line: 2, Column: 1}, Analyzer: "a", Message: "tie"},
	}
	lintkit.SortDiagnostics(ds)
	if ds[0].Pos.Filename != "a.go" || ds[1].Analyzer != "a" || ds[2].Analyzer != "x" {
		t.Fatalf("bad order: %v", ds)
	}
	if got := ds[0].String(); got != "a.go:9:3: first (x)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestRunDropsTestFileDiagnostics pins the vettool behavior: findings in
// _test.go files are filtered centrally.
func TestRunDropsTestFileDiagnostics(t *testing.T) {
	pkgs, err := lintkit.Load("../../..", "./internal/addr")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	flagEverything := &lintkit.Analyzer{
		Name: "flagall",
		Doc:  "test analyzer flagging every file",
		Run: func(pass *lintkit.Pass) error {
			for _, f := range pass.Files {
				pass.Report(f.Pos(), "flagged")
			}
			return nil
		},
	}
	diags, err := lintkit.Run(pkgs, []*lintkit.Analyzer{flagEverything})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on non-test files")
	}
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Fatalf("diagnostic in test file survived: %s", d)
		}
	}
}

// TestDirectiveParsing checks the //pdede: directive forms against a file
// loaded through the real pipeline.
func TestDirectiveParsing(t *testing.T) {
	pkgs, err := lintkit.Load("../../..", "./internal/addr")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	pkg := pkgs[0]
	probe := &lintkit.Analyzer{Name: "probe", Doc: "directive probe", Run: func(pass *lintkit.Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "Mix64" {
					continue
				}
				if !pass.FuncHasDirective(file, fn, "bitwidth-ok") {
					return nil // reported via t.Error below through missing marker
				}
				pass.Report(fn.Pos(), "directive-found")
			}
		}
		return nil
	}}
	diags, err := lintkit.Run(pkgs, []*lintkit.Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Message != "directive-found" {
		t.Fatalf("Mix64's //pdede:bitwidth-ok doc directive not detected (diags: %v, pkg %s)", diags, pkg.ImportPath)
	}
}

// Package addrdomain polices the five address-integer domains the
// partitioned BTB design juggles: addr.RegionID, addr.PageNum,
// addr.PageOffset, addr.SetIndex and addr.Tag — all defined over uint64 and
// therefore one careless conversion away from each other.
//
// The compiler already rejects *mixing* distinct defined types in an
// expression; what it cannot reject is laundering: `addr.PageNum(region)`
// type-checks fine and silently reinterprets a region id as a page number —
// exactly the aliasing confusion that makes BTB reverse-engineering attacks
// subtle. The analyzer flags:
//
//   - cross-domain conversions: `D2(x)` where x's type is a different
//     domain D1 (conversions from plain integers into a domain, and from a
//     domain out to a plain integer, are the sanctioned entry/exit points —
//     e.g. feeding a PageNum into the generic dedup table's uint64 store);
//   - laundered comparisons: `uint64(x) == uint64(y)` (any comparison
//     operator) where x and y belong to different domains — both sides
//     individually legal, the comparison meaningless.
//
// Scope: the design and harness packages. The addr package itself is
// exempt — it is where the domains are defined and composed, so its bit
// algebra legitimately crosses them.
//
// Escape: `//pdede:addrdomain-ok <reason>` on the offending line or the
// line above.
package addrdomain

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lintkit"
)

// Analyzer is the addrdomain lint pass.
var Analyzer = &lintkit.Analyzer{
	Name: "addrdomain",
	Doc:  "flag RegionID/PageNum/PageOffset/SetIndex/Tag values converted or compared across address domains, including through uint64 laundering",
	Run:  run,
}

// scope lists the packages whose address arithmetic is policed. internal/addr
// itself is deliberately absent.
var scope = []string{
	"internal/btb",
	"internal/pdede",
	"internal/multilevel",
	"internal/shotgun",
	"internal/core",
	"internal/oracle",
	"internal/experiments",
	"internal/workload",
	"internal/analysis",
	"internal/predictor",
	"internal/cache",
}

// domainNames are the defined types in internal/addr that constitute
// domains.
var domainNames = map[string]bool{
	"RegionID":   true,
	"PageNum":    true,
	"PageOffset": true,
	"SetIndex":   true,
	"Tag":        true,
}

func run(pass *lintkit.Pass) error {
	if !pass.InScope(scope) {
		return nil
	}
	for _, file := range pass.Files {
		f := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, f, n)
			case *ast.BinaryExpr:
				checkComparison(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// domainOf returns the domain name of t ("" if t is not a domain type).
func domainOf(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !lintkit.PathHasSuffix(obj.Pkg().Path(), "internal/addr") {
		return ""
	}
	if !domainNames[obj.Name()] {
		return ""
	}
	return obj.Name()
}

// exprDomain returns the domain of e's type.
func exprDomain(pass *lintkit.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return ""
	}
	return domainOf(t)
}

// checkConversion flags D2(x) where x already belongs to a different
// domain.
func checkConversion(pass *lintkit.Pass, file *ast.File, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := domainOf(tv.Type)
	src := exprDomain(pass, call.Args[0])
	if dst == "" || src == "" || dst == src {
		return
	}
	if pass.NodeHasDirective(file, call, "addrdomain-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"cross-domain conversion: %s value %s reinterpreted as %s",
		src, types.ExprString(call.Args[0]), dst)
}

// comparisonOps are the operators whose laundering through uint64 is
// flagged.
var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true,
}

// checkComparison flags `uint64(x) OP uint64(y)` where x and y belong to
// different domains: each conversion is individually sanctioned, but
// comparing the results asks whether a page number equals a tag.
func checkComparison(pass *lintkit.Pass, file *ast.File, bin *ast.BinaryExpr) {
	if !comparisonOps[bin.Op] {
		return
	}
	l := launderedDomain(pass, bin.X)
	r := launderedDomain(pass, bin.Y)
	if l == "" || r == "" || l == r {
		return
	}
	if pass.NodeHasDirective(file, bin, "addrdomain-ok") {
		return
	}
	pass.Reportf(bin.Pos(),
		"cross-domain comparison: %s compared against %s through plain-integer conversions", l, r)
}

// launderedDomain returns the domain of x when e is a plain-integer
// conversion `uint64(x)` (or any non-domain integer conversion) of a
// domain-typed value.
func launderedDomain(pass *lintkit.Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return ""
	}
	if domainOf(tv.Type) != "" {
		return "" // converting into a domain is the conversion check's job
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return ""
	}
	return exprDomain(pass, call.Args[0])
}

// Package addr mirrors the real address package's domain types. The
// analyzer identifies domains by package-path suffix ("internal/addr") plus
// type name, so this fixture package carries exactly the five defined
// types.
package addr

type (
	// RegionID is a 1 GiB region index.
	RegionID uint64
	// PageNum is a page index within a region.
	PageNum uint64
	// PageOffset is a byte offset within a page.
	PageOffset uint64
	// SetIndex is a hashed set index.
	SetIndex uint64
	// Tag is a restricted hashed tag.
	Tag uint64
)

// VA is the address type the domains decompose.
type VA uint64

// Page extracts the page component.
func (v VA) Page() PageNum { return PageNum(uint64(v) >> 12 & 0x3ffff) }

// Region extracts the region component.
func (v VA) Region() RegionID { return RegionID(uint64(v) >> 30) }

// Offset extracts the offset component.
func (v VA) Offset() PageOffset { return PageOffset(uint64(v) & 0xfff) }

// Package btb exercises the addrdomain rules: sanctioned plain↔domain
// conversions pass, cross-domain conversions and laundered comparisons are
// flagged, and the escape directive works.
package btb

import "fix/internal/addr"

// store models the generic dedup table's trust boundary: plain uint64 in,
// plain uint64 out.
type store struct{ slots []uint64 }

func (s *store) get(i int) uint64 { return s.slots[i] }

// legal shows every sanctioned flow: extraction into a domain, domain out
// to plain for generic storage, plain back into a domain at the boundary.
func legal(v addr.VA, s *store) addr.VA {
	page := v.Page()
	region := v.Region()
	s.slots[0] = uint64(page)     // domain → plain: generic store
	s.slots[1] = uint64(region)   // domain → plain
	rv := addr.RegionID(s.get(1)) // plain → domain: trust boundary
	pv := addr.PageNum(s.get(0))
	_ = rv
	_ = pv
	same := page == v.Page() // same-domain comparison: fine
	_ = same
	return v
}

// crossConversions are the laundering bugs the compiler cannot see.
func crossConversions(v addr.VA) {
	p := v.Page()
	r := v.Region()
	t := addr.Tag(42)

	_ = addr.PageNum(r)    // want `RegionID value r reinterpreted as PageNum`
	_ = addr.SetIndex(t)   // want `Tag value t reinterpreted as SetIndex`
	_ = addr.RegionID(p)   // want `PageNum value p reinterpreted as RegionID`
	_ = addr.PageOffset(t) // want `Tag value t reinterpreted as PageOffset`
}

// launderedComparisons sneak a cross-domain question through plain-integer
// conversions.
func launderedComparisons(v addr.VA) bool {
	p := v.Page()
	r := v.Region()
	if uint64(p) == uint64(r) { // want `PageNum compared against RegionID`
		return true
	}
	return uint64(v.Offset()) < uint64(p) // want `PageOffset compared against PageNum`
}

// escaped carries the reasoned directive: a deliberate reinterpretation,
// e.g. reusing a page hash as a fallback set index in a degenerate config.
func escaped(p addr.PageNum) addr.SetIndex {
	//pdede:addrdomain-ok fixture: degenerate single-table config folds pages onto sets
	return addr.SetIndex(p)
}

package addrdomain_test

import (
	"testing"

	"repro/internal/analysis/addrdomain"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/lintkit/linttest"
)

func TestAddrdomain(t *testing.T) {
	linttest.Run(t, "testdata/src/fix", []*lintkit.Analyzer{addrdomain.Analyzer})
}

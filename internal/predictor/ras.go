package predictor

import "repro/internal/addr"

// RAS is the return address stack (§2): calls push their fallthrough
// address, returns pop it. A fixed-depth circular stack models hardware:
// deep recursion wraps and corrupts the oldest entries, exactly as real
// RASes do.
type RAS struct {
	stack []addr.VA
	top   int // index of next push slot
	depth int // live entries, ≤ len(stack)
}

// NewRAS builds a stack with the given capacity (Icelake-class cores use
// tens of entries).
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("predictor: RAS capacity must be positive")
	}
	return &RAS{stack: make([]addr.VA, capacity)}
}

// Push records a call's return address.
func (r *RAS) Push(ret addr.VA) {
	r.stack[r.top] = ret
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts a return target. ok is false when the stack is empty (the
// frontend then has no prediction and will resteer).
func (r *RAS) Pop() (addr.VA, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Clone returns a deep copy sharing no mutable state with the receiver, so
// a warmed stack can be handed to several independent simulations.
func (r *RAS) Clone() *RAS {
	d := *r
	d.stack = append([]addr.VA(nil), r.stack...)
	return &d
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// StorageBits returns the stack storage.
func (r *RAS) StorageBits() uint64 { return uint64(len(r.stack)) * 57 }

// Reset clears the stack.
func (r *RAS) Reset() {
	r.top = 0
	r.depth = 0
}

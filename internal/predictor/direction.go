// Package predictor implements the branch direction predictors, the return
// address stack, and the ITTAGE indirect target predictor used around the
// BTB in the core model.
package predictor

import (
	"fmt"

	"repro/internal/addr"
)

// Direction predicts taken/not-taken for conditional branches. The core
// calls Predict then Update for every conditional in program order;
// unconditional branches do not flow through direction prediction.
type Direction interface {
	Name() string
	Predict(pc addr.VA) bool
	Update(pc addr.VA, taken bool)
	StorageBits() uint64
	Reset()
}

// --- Bimodal -------------------------------------------------------------

// Bimodal is a per-PC 2-bit saturating counter table.
type Bimodal struct {
	ctr  []uint8
	mask uint64
}

// NewBimodal builds a bimodal predictor with entries counters (power of two).
func NewBimodal(entries int) (*Bimodal, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: bimodal entries %d not a power of two", entries)
	}
	b := &Bimodal{ctr: make([]uint8, entries), mask: uint64(entries - 1)}
	for i := range b.ctr {
		b.ctr[i] = 2 // weakly taken: most branches are taken
	}
	return b, nil
}

func (b *Bimodal) Name() string { return "bimodal" }

// Predict is on the per-branch hot path and must stay a leaf call.
//
//pdede:inline
//pdede:noalloc
func (b *Bimodal) Predict(pc addr.VA) bool { return b.predictMixed(addr.Mix64(uint64(pc) >> 1)) }

// Update trains on every resolved branch.
//
//pdede:inline
//pdede:noalloc
func (b *Bimodal) Update(pc addr.VA, taken bool) {
	b.updateMixed(addr.Mix64(uint64(pc)>>1), taken)
}

// predictMixed/updateMixed take the already-mixed PC hash, letting callers
// that mix the PC anyway (TAGE shares one Mix64 across its base and tagged
// probes) skip the repeat hash.
func (b *Bimodal) predictMixed(h uint64) bool { return b.ctr[h&b.mask] >= 2 }

func (b *Bimodal) updateMixed(h uint64, taken bool) {
	i := h & b.mask
	if taken {
		if b.ctr[i] < 3 {
			b.ctr[i]++
		}
	} else if b.ctr[i] > 0 {
		b.ctr[i]--
	}
}

// Clone returns a deep copy sharing no mutable state with the receiver.
func (b *Bimodal) Clone() *Bimodal {
	d := *b
	d.ctr = append([]uint8(nil), b.ctr...)
	return &d
}

func (b *Bimodal) StorageBits() uint64 { return uint64(len(b.ctr)) * 2 }

func (b *Bimodal) Reset() {
	for i := range b.ctr {
		b.ctr[i] = 2
	}
}

// --- GShare --------------------------------------------------------------

// GShare XORs global history into the index of a 2-bit counter table.
type GShare struct {
	ctr      []uint8
	mask     uint64
	histBits uint
	ghist    uint64
}

// NewGShare builds a gshare predictor with entries counters (power of two)
// and histBits bits of global history.
func NewGShare(entries int, histBits uint) (*GShare, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("predictor: gshare entries %d not a power of two", entries)
	}
	if histBits == 0 || histBits > 32 {
		return nil, fmt.Errorf("predictor: gshare history %d out of range", histBits)
	}
	g := &GShare{ctr: make([]uint8, entries), mask: uint64(entries - 1), histBits: histBits}
	for i := range g.ctr {
		g.ctr[i] = 2
	}
	return g, nil
}

func (g *GShare) Name() string { return "gshare" }

// idx folds the global history into the mixed PC index.
//
//pdede:inline
//pdede:noalloc
func (g *GShare) idx(pc addr.VA) int {
	h := g.ghist & ((1 << g.histBits) - 1)
	return int((addr.Mix64(uint64(pc)>>1) ^ h) & g.mask)
}

// Predict is on the per-branch hot path and must stay a leaf call.
//
//pdede:inline
//pdede:noalloc
func (g *GShare) Predict(pc addr.VA) bool { return g.ctr[g.idx(pc)] >= 2 }

func (g *GShare) Update(pc addr.VA, taken bool) {
	i := g.idx(pc)
	if taken {
		if g.ctr[i] < 3 {
			g.ctr[i]++
		}
	} else if g.ctr[i] > 0 {
		g.ctr[i]--
	}
	g.ghist <<= 1
	if taken {
		g.ghist |= 1
	}
}

func (g *GShare) StorageBits() uint64 { return uint64(len(g.ctr))*2 + uint64(g.histBits) }

func (g *GShare) Reset() {
	for i := range g.ctr {
		g.ctr[i] = 2
	}
	g.ghist = 0
}

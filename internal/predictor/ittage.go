package predictor

import (
	"fmt"

	"repro/internal/addr"
)

// ITTAGE predicts indirect branch targets (Seznec, "A 64-Kbytes ITTAGE
// indirect branch predictor", §5.6 of the paper). Like TAGE, tagged tables
// are indexed with geometric global-history lengths, but entries hold full
// targets; the longest matching table provides the prediction and a base
// table indexed by PC catches the monomorphic majority.
type ITTAGE struct {
	baseTgt   []addr.VA
	baseValid []bool
	baseMask  uint64

	tables []ittageTable
	ghist  [8]uint64

	provTable int
	provIdx   int
}

type ittageTable struct {
	histLen int
	idxBits uint
	tagBits uint
	tag     []uint16
	target  []addr.VA
	conf    []uint8 // 2-bit confidence
	useful  []uint8
	valid   []bool
}

// ITTAGEConfig sizes the predictor.
type ITTAGEConfig struct {
	BaseEntries  int
	TableEntries int
	HistLens     []int
	TagBits      uint
}

// Default64KBConfig approximates the paper's 64 KB ITTAGE budget: the
// storage is dominated by the 57-bit targets in the tagged tables.
func Default64KBConfig() ITTAGEConfig {
	return ITTAGEConfig{
		BaseEntries:  1024,
		TableEntries: 1024,
		HistLens:     []int{4, 8, 16, 32, 64, 128},
		TagBits:      9,
	}
}

// NewITTAGE builds the predictor.
func NewITTAGE(cfg ITTAGEConfig) (*ITTAGE, error) {
	if cfg.BaseEntries <= 0 || cfg.BaseEntries&(cfg.BaseEntries-1) != 0 {
		return nil, fmt.Errorf("predictor: ittage base entries %d not a power of two", cfg.BaseEntries)
	}
	if cfg.TableEntries <= 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		return nil, fmt.Errorf("predictor: ittage table entries %d not a power of two", cfg.TableEntries)
	}
	if len(cfg.HistLens) == 0 {
		return nil, fmt.Errorf("predictor: ittage needs history lengths")
	}
	it := &ITTAGE{
		baseTgt:   make([]addr.VA, cfg.BaseEntries),
		baseValid: make([]bool, cfg.BaseEntries),
		baseMask:  uint64(cfg.BaseEntries - 1),
		provTable: -1,
	}
	idxBits := uint(0)
	for n := cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	prev := 0
	for _, hl := range cfg.HistLens {
		if hl <= prev || hl > 512 {
			return nil, fmt.Errorf("predictor: ittage history lengths must increase and stay ≤512")
		}
		prev = hl
		it.tables = append(it.tables, ittageTable{
			histLen: hl,
			idxBits: idxBits,
			tagBits: cfg.TagBits,
			tag:     make([]uint16, cfg.TableEntries),
			target:  make([]addr.VA, cfg.TableEntries),
			conf:    make([]uint8, cfg.TableEntries),
			useful:  make([]uint8, cfg.TableEntries),
			valid:   make([]bool, cfg.TableEntries),
		})
	}
	return it, nil
}

func (it *ITTAGE) foldHist(histLen int, width uint) uint64 {
	var out uint64
	bitsLeft := histLen
	word := 0
	for bitsLeft > 0 {
		take := bitsLeft
		if take > 64 {
			take = 64
		}
		chunk := it.ghist[word]
		if take < 64 {
			chunk &= (1 << uint(take)) - 1
		}
		out ^= chunk
		bitsLeft -= take
		word++
	}
	return addr.Fold(out, width)
}

func (it *ITTAGE) index(tb *ittageTable, pc addr.VA) int {
	h := addr.Mix64(uint64(pc)>>1) ^ it.foldHist(tb.histLen, tb.idxBits)
	return int(h & ((1 << tb.idxBits) - 1))
}

func (it *ITTAGE) tagOf(tb *ittageTable, pc addr.VA) uint16 {
	h := addr.Mix64(uint64(pc)>>1+0x7f4a7c15) ^ it.foldHist(tb.histLen, tb.tagBits)
	return uint16(h & ((1 << tb.tagBits) - 1))
}

// Predict returns the predicted target for an indirect branch, if any.
func (it *ITTAGE) Predict(pc addr.VA) (addr.VA, bool) {
	it.provTable = -1
	var target addr.VA
	ok := false
	bi := int(addr.Mix64(uint64(pc)>>1) & it.baseMask)
	if it.baseValid[bi] {
		target, ok = it.baseTgt[bi], true
	}
	for i := range it.tables {
		tb := &it.tables[i]
		idx := it.index(tb, pc)
		if tb.valid[idx] && tb.tag[idx] == it.tagOf(tb, pc) {
			it.provTable = i
			it.provIdx = idx
			target, ok = tb.target[idx], true
		}
	}
	return target, ok
}

// Update trains the predictor with the resolved target. Call right after
// Predict for the same branch.
func (it *ITTAGE) Update(pc addr.VA, target addr.VA) {
	correct := false
	if it.provTable >= 0 {
		tb := &it.tables[it.provTable]
		correct = tb.target[it.provIdx] == target
		if correct {
			if tb.conf[it.provIdx] < 3 {
				tb.conf[it.provIdx]++
			}
			if tb.useful[it.provIdx] < 3 {
				tb.useful[it.provIdx]++
			}
		} else {
			if tb.conf[it.provIdx] > 0 {
				tb.conf[it.provIdx]--
			} else {
				tb.target[it.provIdx] = target
			}
			if tb.useful[it.provIdx] > 0 {
				tb.useful[it.provIdx]--
			}
		}
	} else {
		bi := int(addr.Mix64(uint64(pc)>>1) & it.baseMask)
		correct = it.baseValid[bi] && it.baseTgt[bi] == target
		it.baseTgt[bi] = target
		it.baseValid[bi] = true
	}

	if !correct && it.provTable < len(it.tables)-1 {
		for i := it.provTable + 1; i < len(it.tables); i++ {
			tb := &it.tables[i]
			idx := it.index(tb, pc)
			if !tb.valid[idx] || tb.useful[idx] == 0 {
				tb.valid[idx] = true
				tb.tag[idx] = it.tagOf(tb, pc)
				tb.target[idx] = target
				tb.conf[idx] = 0
				tb.useful[idx] = 0
				break
			}
		}
	}
}

// Observe shifts a resolved branch direction into the global history.
// The core calls it for every branch so history reflects the path.
func (it *ITTAGE) Observe(taken bool) {
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := 0; i < len(it.ghist); i++ {
		next := it.ghist[i] >> 63
		it.ghist[i] = it.ghist[i]<<1 | carry
		carry = next
	}
}

// StorageBits reports the predictor's storage.
func (it *ITTAGE) StorageBits() uint64 {
	bits := uint64(len(it.baseTgt)) * (57 + 1)
	for i := range it.tables {
		tb := &it.tables[i]
		per := uint64(tb.tagBits) + 57 + 2 + 2 + 1
		bits += uint64(len(tb.tag)) * per
	}
	return bits + 512
}

// Reset clears all state.
func (it *ITTAGE) Reset() {
	for i := range it.baseValid {
		it.baseValid[i] = false
	}
	for i := range it.tables {
		tb := &it.tables[i]
		for j := range tb.valid {
			tb.valid[j] = false
		}
	}
	it.ghist = [8]uint64{}
	it.provTable = -1
}

package predictor

import (
	"fmt"

	"repro/internal/addr"
)

// TAGE is a compact TAGE direction predictor (Seznec): a bimodal base table
// plus tagged tables indexed with geometrically increasing global-history
// lengths. The longest-history matching table provides the prediction;
// mispredictions allocate into a longer table. This is the "TAGE-like"
// predictor of the paper's Icelake-ish core (Table 3).
type TAGE struct {
	base *Bimodal

	tables []tageTable
	ghist  [8]uint64 // 512 bits of global history, shifted as a unit
	// ghistWords is how many ghist words the longest configured history
	// actually reaches; the per-branch shift stops there (bits beyond the
	// longest history are never read).
	ghistWords int

	// provider bookkeeping between Predict and Update
	provTable int // -1 = base
	provIdx   int

	// Per-branch scratch: Predict derives every table's index and tag (and
	// the base prediction) exactly once; the immediately following Update for
	// the same PC (the sequential-predictor contract) reuses them instead of
	// re-hashing. Valid because the global history only shifts at the end of
	// Update. One-shot: consumed by Update, re-derived on any PC mismatch.
	// The per-table halves live in tageTable (scratchIdx/scratchTag).
	// Flag bytes sit after the words so the struct carries no interior
	// padding.
	scratchPC  addr.VA
	scratchMix uint64 // Mix64(pc>>1), shared with the base table's index
	altPred    bool
	scratchOK  bool
	basePred   bool
}

type tageTable struct {
	histLen int
	idxBits uint
	tagBits uint
	idxMask uint64 // (1<<idxBits)-1, hoisted out of the per-branch hash
	tagMask uint64 // (1<<tagBits)-1
	// Constants of the folded-register shift (see foldShift), precomputed so
	// the per-branch history update carries no division: the outgoing history
	// bit lives at ghist word outWord, bit outBit, and cancels at folded
	// position histLen mod width for each register width.
	outWord     int
	outBit      uint
	idxOutShift uint // histLen % idxBits
	tagOutShift uint // histLen % tagBits

	// Folded-history registers (the circular shift registers of real TAGE
	// hardware): foldIdx/foldTag hold addr.Fold(histWord(histLen), width)
	// for this table's index and tag widths, maintained incrementally as
	// the history shifts. Fold sends history bit p to folded position
	// p mod width, so one shift is a width-bit rotate plus injecting the new
	// bit at 0 and cancelling the outgoing bit at histLen mod width — O(1)
	// per table instead of re-folding the history on every prediction.
	foldIdx uint64
	foldTag uint64

	// This table's half of the Predict→Update scratch (see TAGE.scratchOK).
	scratchIdx int32
	scratchTag uint16

	// tag packs validity and the stored tag into one word: tagValid|tag for
	// a live entry, 0 for a free one. The hot Predict hit check is then a
	// single load and compare.
	tag    []uint16
	ctr    []int8 // -4..3, taken when >= 0
	useful []uint8
}

// tagValid marks a live entry in tageTable.tag. Tags are at most 15 bits, so
// the marker bit never collides and a free slot's 0 never matches a probe
// (probe tags always carry the marker).
const tagValid = 1 << 15

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	// BaseEntries sizes the bimodal base table (power of two).
	BaseEntries int
	// TableEntries sizes each tagged table (power of two).
	TableEntries int
	// HistLens are the geometric history lengths, shortest first.
	HistLens []int
	// TagBits is the tag width of the tagged tables.
	TagBits uint
}

// DefaultTAGEConfig is a 4-table, ~8 KiB configuration adequate for the
// synthetic workloads' conditional behaviour.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseEntries:  8192,
		TableEntries: 2048,
		HistLens:     []int{8, 16, 32, 64},
		TagBits:      9,
	}
}

// NewTAGE builds the predictor.
func NewTAGE(cfg TAGEConfig) (*TAGE, error) {
	base, err := NewBimodal(cfg.BaseEntries)
	if err != nil {
		return nil, err
	}
	if cfg.TableEntries <= 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		return nil, fmt.Errorf("predictor: tage table entries %d not a power of two", cfg.TableEntries)
	}
	if len(cfg.HistLens) == 0 {
		return nil, fmt.Errorf("predictor: tage needs at least one history length")
	}
	if cfg.TagBits == 0 || cfg.TagBits > 15 {
		return nil, fmt.Errorf("predictor: tage tag width %d outside 1..15", cfg.TagBits)
	}
	t := &TAGE{base: base, provTable: -1}
	idxBits := uint(0)
	for n := cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	prev := 0
	for _, hl := range cfg.HistLens {
		if hl <= prev || hl > 512 {
			return nil, fmt.Errorf("predictor: tage history lengths must increase and stay ≤512")
		}
		prev = hl
		t.tables = append(t.tables, tageTable{
			histLen:     hl,
			idxBits:     idxBits,
			tagBits:     cfg.TagBits,
			idxMask:     1<<idxBits - 1,
			tagMask:     1<<cfg.TagBits - 1,
			outWord:     (hl - 1) >> 6,
			outBit:      uint(hl-1) & 63,
			idxOutShift: uint(hl) % idxBits,
			tagOutShift: uint(hl) % cfg.TagBits,
			tag:         make([]uint16, cfg.TableEntries),
			ctr:         make([]int8, cfg.TableEntries),
			useful:      make([]uint8, cfg.TableEntries),
		})
	}
	t.ghistWords = (prev + 63) / 64
	return t, nil
}

func (t *TAGE) Name() string { return "tage" }

// histWord XORs the low histLen history bits into a single word — foldHist
// minus the final width fold, so one history scan serves both the index and
// the tag hash of a table.
func (t *TAGE) histWord(histLen int) uint64 {
	var out uint64
	bitsLeft := histLen
	word := 0
	for bitsLeft > 0 {
		take := bitsLeft
		if take > 64 {
			take = 64
		}
		chunk := t.ghist[word]
		if take < 64 {
			chunk &= (1 << uint(take)) - 1
		}
		out ^= chunk
		bitsLeft -= take
		word++
	}
	return out
}

// foldHist compresses the low histLen history bits into width bits.
func (t *TAGE) foldHist(histLen int, width uint) uint64 {
	return addr.Fold(t.histWord(histLen), width)
}

func (t *TAGE) index(tb *tageTable, pc addr.VA) int {
	h := addr.Mix64(uint64(pc)>>1) ^ t.foldHist(tb.histLen, tb.idxBits)
	return int(h & ((1 << tb.idxBits) - 1))
}

// tagOf returns pc's probe tag for tb, tagValid included.
func (t *TAGE) tagOf(tb *tageTable, pc addr.VA) uint16 {
	h := addr.Mix64(uint64(pc)>>1+0x9e3779b9) ^ t.foldHist(tb.histLen, tb.tagBits)
	return uint16(h&((1<<tb.tagBits)-1)) | tagValid
}

// Predict implements Direction.
func (t *TAGE) Predict(pc addr.VA) bool {
	t.provTable = -1
	pcMixIdx := addr.Mix64(uint64(pc) >> 1)
	pcMixTag := addr.Mix64(uint64(pc)>>1 + 0x9e3779b9)
	pred := t.base.predictMixed(pcMixIdx)
	t.basePred = pred
	t.altPred = pred
	for i := range t.tables {
		tb := &t.tables[i]
		idx := int((pcMixIdx ^ tb.foldIdx) & tb.idxMask)
		tag := uint16((pcMixTag^tb.foldTag)&tb.tagMask) | tagValid
		tb.scratchIdx = int32(idx)
		tb.scratchTag = tag
		if tb.tag[idx] == tag {
			t.altPred = pred
			t.provTable = i
			t.provIdx = idx
			pred = tb.ctr[idx] >= 0
		}
	}
	t.scratchPC = pc
	t.scratchOK = true
	t.scratchMix = pcMixIdx
	return pred
}

// slot returns table i's (index, tag) for pc, reusing Predict's scratch when
// Update immediately follows Predict for the same PC and re-deriving from
// the (unshifted) history otherwise.
func (t *TAGE) slot(i int, pc addr.VA) (int, uint16) {
	tb := &t.tables[i]
	if t.scratchOK && t.scratchPC == pc {
		return int(tb.scratchIdx), tb.scratchTag
	}
	return t.index(tb, pc), t.tagOf(tb, pc)
}

// Update implements Direction. It must be called right after Predict for
// the same branch (standard sequential-predictor contract).
func (t *TAGE) Update(pc addr.VA, taken bool) {
	correct := true
	if t.provTable >= 0 {
		tb := &t.tables[t.provTable]
		correct = (tb.ctr[t.provIdx] >= 0) == taken
		// Train provider counter.
		if taken && tb.ctr[t.provIdx] < 3 {
			tb.ctr[t.provIdx]++
		}
		if !taken && tb.ctr[t.provIdx] > -4 {
			tb.ctr[t.provIdx]--
		}
		// Usefulness: provider agreed with outcome and alt did not.
		if correct && t.altPred != taken && tb.useful[t.provIdx] < 3 {
			tb.useful[t.provIdx]++
		}
		if !correct && tb.useful[t.provIdx] > 0 {
			tb.useful[t.provIdx]--
		}
	} else {
		var h uint64
		if t.scratchOK && t.scratchPC == pc {
			h = t.scratchMix
			correct = t.basePred == taken
		} else {
			h = addr.Mix64(uint64(pc) >> 1)
			correct = t.base.predictMixed(h) == taken
		}
		t.base.updateMixed(h, taken)
	}

	// Allocate in a longer-history table on a misprediction.
	if !correct && t.provTable < len(t.tables)-1 {
		allocated := false
		for i := t.provTable + 1; i < len(t.tables) && !allocated; i++ {
			tb := &t.tables[i]
			idx, tag := t.slot(i, pc)
			if tb.tag[idx]&tagValid == 0 || tb.useful[idx] == 0 {
				tb.tag[idx] = tag
				if taken {
					tb.ctr[idx] = 0
				} else {
					tb.ctr[idx] = -1
				}
				tb.useful[idx] = 0
				allocated = true
			}
		}
		if !allocated {
			// Decay usefulness along the allocation path.
			for i := t.provTable + 1; i < len(t.tables); i++ {
				tb := &t.tables[i]
				idx, _ := t.slot(i, pc)
				if tb.useful[idx] > 0 {
					tb.useful[idx]--
				}
			}
		}
	}

	// Shift global history, updating the folded registers first (they need
	// the pre-shift outgoing bit). The scratch is invalidated with the
	// shift: indices and tags derived before it are stale for any later
	// branch.
	in := uint64(0)
	if taken {
		in = 1
	}
	for i := range t.tables {
		tb := &t.tables[i]
		out := t.ghist[tb.outWord] >> tb.outBit & 1
		tb.foldIdx = foldShift(tb.foldIdx, tb.idxBits, tb.idxMask, in, out, tb.idxOutShift)
		tb.foldTag = foldShift(tb.foldTag, tb.tagBits, tb.tagMask, in, out, tb.tagOutShift)
	}
	carry := in
	for i := 0; i < t.ghistWords; i++ {
		next := t.ghist[i] >> 63
		t.ghist[i] = t.ghist[i]<<1 | carry
		carry = next
	}
	t.scratchOK = false
}

// Clone returns a deep copy of the predictor: every table, counter and
// folded-history register is duplicated, so the clone and the receiver can
// be driven independently and will diverge only with their inputs. The
// warm-state fan-out in internal/core clones one warmed direction predictor
// per design under test; bit-identity of warm-clone runs versus cold runs
// depends on this copy being complete.
func (t *TAGE) Clone() *TAGE {
	d := *t // scalars, ghist array, provider/scratch bookkeeping
	d.base = t.base.Clone()
	d.tables = make([]tageTable, len(t.tables))
	for i := range t.tables {
		tb := t.tables[i] // copies the per-table constants and fold registers
		tb.tag = append([]uint16(nil), tb.tag...)
		tb.ctr = append([]int8(nil), tb.ctr...)
		tb.useful = append([]uint8(nil), tb.useful...)
		d.tables[i] = tb
	}
	return &d
}

// foldShift advances a folded-history register by one history shift: rotate
// the width-bit fold left by one (bit p mod width follows bit p to
// (p+1) mod width), inject the incoming bit at position 0, and cancel the
// outgoing bit, whose post-rotate position (histLen mod width) the caller
// precomputed as outShift.
func foldShift(f uint64, width uint, mask, in, out uint64, outShift uint) uint64 {
	f = (f<<1 | f>>(width-1)) & mask
	f ^= in
	f ^= out << outShift
	return f & mask
}

// StorageBits implements Direction.
func (t *TAGE) StorageBits() uint64 {
	bits := t.base.StorageBits() + 512
	for i := range t.tables {
		tb := &t.tables[i]
		per := uint64(tb.tagBits) + 3 + 2 + 1 // tag + ctr + useful + valid
		bits += uint64(len(tb.tag)) * per
	}
	return bits
}

// Reset implements Direction.
func (t *TAGE) Reset() {
	t.base.Reset()
	for i := range t.tables {
		tb := &t.tables[i]
		for j := range tb.tag {
			tb.tag[j] = 0
			tb.ctr[j] = 0
			tb.useful[j] = 0
		}
		tb.foldIdx = 0
		tb.foldTag = 0
	}
	t.ghist = [8]uint64{}
	t.provTable = -1
	t.scratchOK = false
}

package predictor

import (
	"fmt"

	"repro/internal/addr"
)

// TAGE is a compact TAGE direction predictor (Seznec): a bimodal base table
// plus tagged tables indexed with geometrically increasing global-history
// lengths. The longest-history matching table provides the prediction;
// mispredictions allocate into a longer table. This is the "TAGE-like"
// predictor of the paper's Icelake-ish core (Table 3).
type TAGE struct {
	base *Bimodal

	tables []tageTable
	ghist  [8]uint64 // 512 bits of global history, shifted as a unit

	// provider bookkeeping between Predict and Update
	provTable int // -1 = base
	provIdx   int
	altPred   bool
}

type tageTable struct {
	histLen int
	idxBits uint
	tagBits uint
	tag     []uint16
	ctr     []int8 // -4..3, taken when >= 0
	useful  []uint8
	valid   []bool
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	// BaseEntries sizes the bimodal base table (power of two).
	BaseEntries int
	// TableEntries sizes each tagged table (power of two).
	TableEntries int
	// HistLens are the geometric history lengths, shortest first.
	HistLens []int
	// TagBits is the tag width of the tagged tables.
	TagBits uint
}

// DefaultTAGEConfig is a 4-table, ~8 KiB configuration adequate for the
// synthetic workloads' conditional behaviour.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseEntries:  8192,
		TableEntries: 2048,
		HistLens:     []int{8, 16, 32, 64},
		TagBits:      9,
	}
}

// NewTAGE builds the predictor.
func NewTAGE(cfg TAGEConfig) (*TAGE, error) {
	base, err := NewBimodal(cfg.BaseEntries)
	if err != nil {
		return nil, err
	}
	if cfg.TableEntries <= 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		return nil, fmt.Errorf("predictor: tage table entries %d not a power of two", cfg.TableEntries)
	}
	if len(cfg.HistLens) == 0 {
		return nil, fmt.Errorf("predictor: tage needs at least one history length")
	}
	t := &TAGE{base: base, provTable: -1}
	idxBits := uint(0)
	for n := cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	prev := 0
	for _, hl := range cfg.HistLens {
		if hl <= prev || hl > 512 {
			return nil, fmt.Errorf("predictor: tage history lengths must increase and stay ≤512")
		}
		prev = hl
		t.tables = append(t.tables, tageTable{
			histLen: hl,
			idxBits: idxBits,
			tagBits: cfg.TagBits,
			tag:     make([]uint16, cfg.TableEntries),
			ctr:     make([]int8, cfg.TableEntries),
			useful:  make([]uint8, cfg.TableEntries),
			valid:   make([]bool, cfg.TableEntries),
		})
	}
	return t, nil
}

func (t *TAGE) Name() string { return "tage" }

// foldHist compresses the low histLen history bits into width bits.
func (t *TAGE) foldHist(histLen int, width uint) uint64 {
	var out uint64
	bitsLeft := histLen
	word := 0
	for bitsLeft > 0 {
		take := bitsLeft
		if take > 64 {
			take = 64
		}
		chunk := t.ghist[word]
		if take < 64 {
			chunk &= (1 << uint(take)) - 1
		}
		out ^= chunk
		bitsLeft -= take
		word++
	}
	return addr.Fold(out, width)
}

func (t *TAGE) index(tb *tageTable, pc addr.VA) int {
	h := addr.Mix64(uint64(pc)>>1) ^ t.foldHist(tb.histLen, tb.idxBits)
	return int(h & ((1 << tb.idxBits) - 1))
}

func (t *TAGE) tagOf(tb *tageTable, pc addr.VA) uint16 {
	h := addr.Mix64(uint64(pc)>>1+0x9e3779b9) ^ t.foldHist(tb.histLen, tb.tagBits)
	return uint16(h & ((1 << tb.tagBits) - 1))
}

// Predict implements Direction.
func (t *TAGE) Predict(pc addr.VA) bool {
	t.provTable = -1
	pred := t.base.Predict(pc)
	t.altPred = pred
	for i := range t.tables {
		tb := &t.tables[i]
		idx := t.index(tb, pc)
		if tb.valid[idx] && tb.tag[idx] == t.tagOf(tb, pc) {
			t.altPred = pred
			t.provTable = i
			t.provIdx = idx
			pred = tb.ctr[idx] >= 0
		}
	}
	return pred
}

// Update implements Direction. It must be called right after Predict for
// the same branch (standard sequential-predictor contract).
func (t *TAGE) Update(pc addr.VA, taken bool) {
	correct := true
	if t.provTable >= 0 {
		tb := &t.tables[t.provTable]
		correct = (tb.ctr[t.provIdx] >= 0) == taken
		// Train provider counter.
		if taken && tb.ctr[t.provIdx] < 3 {
			tb.ctr[t.provIdx]++
		}
		if !taken && tb.ctr[t.provIdx] > -4 {
			tb.ctr[t.provIdx]--
		}
		// Usefulness: provider agreed with outcome and alt did not.
		if correct && t.altPred != taken && tb.useful[t.provIdx] < 3 {
			tb.useful[t.provIdx]++
		}
		if !correct && tb.useful[t.provIdx] > 0 {
			tb.useful[t.provIdx]--
		}
	} else {
		correct = t.base.Predict(pc) == taken
		t.base.Update(pc, taken)
	}

	// Allocate in a longer-history table on a misprediction.
	if !correct && t.provTable < len(t.tables)-1 {
		allocated := false
		for i := t.provTable + 1; i < len(t.tables) && !allocated; i++ {
			tb := &t.tables[i]
			idx := t.index(tb, pc)
			if !tb.valid[idx] || tb.useful[idx] == 0 {
				tb.valid[idx] = true
				tb.tag[idx] = t.tagOf(tb, pc)
				if taken {
					tb.ctr[idx] = 0
				} else {
					tb.ctr[idx] = -1
				}
				tb.useful[idx] = 0
				allocated = true
			}
		}
		if !allocated {
			// Decay usefulness along the allocation path.
			for i := t.provTable + 1; i < len(t.tables); i++ {
				tb := &t.tables[i]
				idx := t.index(tb, pc)
				if tb.useful[idx] > 0 {
					tb.useful[idx]--
				}
			}
		}
	}

	// Shift global history.
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := 0; i < len(t.ghist); i++ {
		next := t.ghist[i] >> 63
		t.ghist[i] = t.ghist[i]<<1 | carry
		carry = next
	}
}

// StorageBits implements Direction.
func (t *TAGE) StorageBits() uint64 {
	bits := t.base.StorageBits() + 512
	for i := range t.tables {
		tb := &t.tables[i]
		per := uint64(tb.tagBits) + 3 + 2 + 1 // tag + ctr + useful + valid
		bits += uint64(len(tb.tag)) * per
	}
	return bits
}

// Reset implements Direction.
func (t *TAGE) Reset() {
	t.base.Reset()
	for i := range t.tables {
		tb := &t.tables[i]
		for j := range tb.valid {
			tb.valid[j] = false
			tb.tag[j] = 0
			tb.ctr[j] = 0
			tb.useful[j] = 0
		}
	}
	t.ghist = [8]uint64{}
	t.provTable = -1
}

package predictor

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/rng"
)

func TestBimodalLearnsBias(t *testing.T) {
	b, err := NewBimodal(1024)
	if err != nil {
		t.Fatal(err)
	}
	pc := addr.Build(1, 2, 0x40)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal did not learn not-taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal did not relearn taken bias")
	}
}

func TestBimodalRejectsBadSize(t *testing.T) {
	if _, err := NewBimodal(1000); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewBimodal(0); err == nil {
		t.Error("zero accepted")
	}
}

func TestGShareLearnsPattern(t *testing.T) {
	g, err := NewGShare(4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	pc := addr.Build(1, 2, 0x40)
	// Alternating pattern: bimodal cannot learn it, gshare can.
	correct := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if g.Predict(pc) == taken {
			if i >= 1000 {
				correct++
			}
		}
		g.Update(pc, taken)
	}
	if acc := float64(correct) / 1000; acc < 0.95 {
		t.Errorf("gshare accuracy on alternating pattern = %v", acc)
	}
}

// loopAccuracy runs a structured loop-nest workload: an inner loop of body
// branches whose back-edge exits every `trip` iterations. The exit is
// invisible to a bimodal predictor but fully determined by global history.
func loopAccuracy(t *testing.T, d Direction, trip, steps int) float64 {
	t.Helper()
	body := []addr.VA{
		addr.Build(1, 2, 0x40), addr.Build(1, 2, 0x80), addr.Build(1, 2, 0xc0),
	}
	back := addr.Build(1, 2, 0x100)
	correct, total := 0, 0
	measured := steps / 2
	iter := 0
	for s := 0; s < steps; s++ {
		for _, pc := range body {
			pred := d.Predict(pc)
			if s > measured {
				total++
				if pred { // body branches always taken
					correct++
				}
			}
			d.Update(pc, true)
		}
		iter++
		taken := iter%trip != 0 // loop exit every `trip` iterations
		pred := d.Predict(back)
		if s > measured {
			total++
			if pred == taken {
				correct++
			}
		}
		d.Update(back, taken)
	}
	return float64(correct) / float64(total)
}

func TestTAGEAccuracyBeatsBimodalOnLoops(t *testing.T) {
	tg, err := NewTAGE(DefaultTAGEConfig())
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := NewBimodal(8192)
	accT := loopAccuracy(t, tg, 5, 4000)
	accB := loopAccuracy(t, bm, 5, 4000)
	t.Logf("tage=%.4f bimodal=%.4f", accT, accB)
	if accT <= accB {
		t.Errorf("TAGE (%.4f) not above bimodal (%.4f) on loop exits", accT, accB)
	}
	if accT < 0.97 {
		t.Errorf("TAGE accuracy %.4f too low on fully regular loops", accT)
	}
}

func TestTAGEHandlesBiasedNoise(t *testing.T) {
	// Plain biased branches: TAGE must be at least competitive.
	tg, _ := NewTAGE(DefaultTAGEConfig())
	r := rng.New(42)
	pcs := make([]addr.VA, 64)
	bias := make([]float64, 64)
	for i := range pcs {
		pcs[i] = addr.Build(1, addr.PageNum(uint64(i/8)), addr.PageOffset(uint64(i%8)*64))
		if r.Bool(0.5) {
			bias[i] = 0.95
		} else {
			bias[i] = 0.05
		}
	}
	correct, total := 0, 0
	for s := 0; s < 40000; s++ {
		i := r.Intn(len(pcs))
		taken := r.Bool(bias[i])
		if tg.Predict(pcs[i]) == taken && s > 20000 {
			correct++
		}
		if s > 20000 {
			total++
		}
		tg.Update(pcs[i], taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.90 {
		t.Errorf("TAGE biased-branch accuracy = %.4f", acc)
	}
}

func TestTAGEReset(t *testing.T) {
	tg, _ := NewTAGE(DefaultTAGEConfig())
	pc := addr.Build(1, 2, 0x40)
	for i := 0; i < 100; i++ {
		tg.Predict(pc)
		tg.Update(pc, false)
	}
	tg.Reset()
	// After reset the default (weakly-taken base) prediction returns.
	if !tg.Predict(pc) {
		t.Error("reset did not clear learned state")
	}
}

func TestTAGEStorage(t *testing.T) {
	tg, _ := NewTAGE(DefaultTAGEConfig())
	if tg.StorageBits() == 0 {
		t.Error("zero storage reported")
	}
}

func TestTAGEConfigValidation(t *testing.T) {
	bad := []TAGEConfig{
		{BaseEntries: 1000, TableEntries: 1024, HistLens: []int{8}, TagBits: 9},
		{BaseEntries: 1024, TableEntries: 1000, HistLens: []int{8}, TagBits: 9},
		{BaseEntries: 1024, TableEntries: 1024, HistLens: nil, TagBits: 9},
		{BaseEntries: 1024, TableEntries: 1024, HistLens: []int{16, 8}, TagBits: 9},
	}
	for i, c := range bad {
		if _, err := NewTAGE(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRASPairing(t *testing.T) {
	r := NewRAS(16)
	a := addr.Build(1, 2, 0x44)
	b := addr.Build(1, 3, 0x88)
	r.Push(a)
	r.Push(b)
	if got, ok := r.Pop(); !ok || got != b {
		t.Errorf("Pop = %v,%v want %v", got, ok, b)
	}
	if got, ok := r.Pop(); !ok || got != a {
		t.Errorf("Pop = %v,%v want %v", got, ok, a)
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop on empty stack succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ {
		r.Push(addr.Build(1, addr.PageNum(uint64(i)), 0))
	}
	if r.Depth() != 4 {
		t.Errorf("depth = %d, want 4", r.Depth())
	}
	// The newest 4 survive: 5,4,3,2.
	for want := 5; want >= 2; want-- {
		got, ok := r.Pop()
		if !ok || got != addr.Build(1, addr.PageNum(uint64(want)), 0) {
			t.Errorf("Pop = %v,%v want page %d", got, ok, want)
		}
	}
}

func TestRASReset(t *testing.T) {
	r := NewRAS(8)
	r.Push(addr.Build(1, 1, 0))
	r.Reset()
	if r.Depth() != 0 {
		t.Error("reset did not clear")
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop after reset succeeded")
	}
}

func TestITTAGEMonomorphic(t *testing.T) {
	it, err := NewITTAGE(Default64KBConfig())
	if err != nil {
		t.Fatal(err)
	}
	pc := addr.Build(1, 2, 0x40)
	tgt := addr.Build(3, 4, 0x80)
	if _, ok := it.Predict(pc); ok {
		t.Error("cold predictor predicted")
	}
	it.Update(pc, tgt)
	it.Observe(true)
	if got, ok := it.Predict(pc); !ok || got != tgt {
		t.Errorf("Predict = %v,%v", got, ok)
	}
}

func TestITTAGEPolymorphicWithHistory(t *testing.T) {
	it, _ := NewITTAGE(Default64KBConfig())
	pc := addr.Build(1, 2, 0x40)
	t1 := addr.Build(3, 4, 0x80)
	t2 := addr.Build(5, 6, 0xc0)
	// Target correlates with the preceding direction pattern: after a
	// taken-taken prefix → t1, after not-not → t2.
	correct, total := 0, 0
	r := rng.New(7)
	for i := 0; i < 8000; i++ {
		phase := r.Bool(0.5)
		var want addr.VA
		if phase {
			it.Observe(true)
			it.Observe(true)
			want = t1
		} else {
			it.Observe(false)
			it.Observe(false)
			want = t2
		}
		got, ok := it.Predict(pc)
		if i > 4000 {
			total++
			if ok && got == want {
				correct++
			}
		}
		it.Update(pc, want)
		it.Observe(true)
	}
	if acc := float64(correct) / float64(total); acc < 0.80 {
		t.Errorf("ITTAGE history-correlated accuracy = %.3f", acc)
	}
}

func TestITTAGEStorageNear64KB(t *testing.T) {
	it, _ := NewITTAGE(Default64KBConfig())
	kb := float64(it.StorageBits()) / 8 / 1024
	if kb < 40 || kb > 80 {
		t.Errorf("ITTAGE storage = %.1f KB, want ≈64", kb)
	}
}

func TestITTAGEReset(t *testing.T) {
	it, _ := NewITTAGE(Default64KBConfig())
	pc := addr.Build(1, 2, 0x40)
	it.Update(pc, addr.Build(3, 4, 0x80))
	it.Reset()
	if _, ok := it.Predict(pc); ok {
		t.Error("prediction survived reset")
	}
}

// TestTAGECloneIsDeep trains a parent and an identically-trained twin,
// clones the parent, trains the clone on an adversarial stream, then
// verifies parent and twin still predict and train in lockstep — any
// divergence is table, counter or folded-history state shared with the
// clone. The RAS and Bimodal clones get the same treatment.
func TestTAGECloneIsDeep(t *testing.T) {
	cfg := DefaultTAGEConfig()
	parent, _ := NewTAGE(cfg)
	twin, _ := NewTAGE(cfg)
	step := func(p *TAGE, pc uint64, taken bool) bool {
		got := p.Predict(addr.New(pc))
		p.Update(addr.New(pc), taken)
		return got
	}
	for i := 0; i < 4000; i++ {
		pc := uint64(0x1000 + (i%37)*4)
		taken := i%3 != 0
		step(parent, pc, taken)
		step(twin, pc, taken)
	}
	clone := parent.Clone()
	for i := 0; i < 4000; i++ {
		// Opposite outcomes on overlapping PCs: allocations, usefulness
		// decay and history shifts all run on the clone.
		step(clone, uint64(0x1000+(i%41)*4), i%3 == 0)
	}
	for i := 0; i < 4000; i++ {
		pc := uint64(0x1000 + (i%43)*4)
		taken := i%5 != 0
		if got, want := step(parent, pc, taken), step(twin, pc, taken); got != want {
			t.Fatalf("parent diverged from twin after clone training at step %d", i)
		}
	}
}

func TestRASCloneIsDeep(t *testing.T) {
	parent := NewRAS(8)
	for i := 0; i < 5; i++ {
		parent.Push(addr.New(uint64(0x100 + i*8)))
	}
	clone := parent.Clone()
	for i := 0; i < 8; i++ { // drain and refill the clone
		clone.Pop()
	}
	for i := 0; i < 8; i++ {
		clone.Push(addr.New(uint64(0x9000 + i*8)))
	}
	if parent.Depth() != 5 {
		t.Fatalf("parent depth changed to %d after clone mutation", parent.Depth())
	}
	for i := 4; i >= 0; i-- {
		got, ok := parent.Pop()
		if !ok || got != addr.New(uint64(0x100+i*8)) {
			t.Fatalf("parent pop %d = %v, %v; clone mutation leaked", i, got, ok)
		}
	}
}

func TestBimodalCloneIsDeep(t *testing.T) {
	parent, _ := NewBimodal(1024)
	pc := addr.New(0x40)
	parent.Update(pc, true)
	parent.Update(pc, true) // saturate toward taken
	clone := parent.Clone()
	for i := 0; i < 4; i++ {
		clone.Update(pc, false)
	}
	if !parent.Predict(pc) {
		t.Error("clone updates drove the parent's counter down")
	}
	if clone.Predict(pc) {
		t.Error("clone did not train; test is vacuous")
	}
}

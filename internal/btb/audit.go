package btb

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/addr"
)

// Auditable is implemented by designs that can deep-check their own internal
// invariants: refcount sums matching live pointers, no dangling monitor
// pointers, per-set tag uniqueness, well-formed stored addresses. Audit is a
// pure check — it must not mutate prediction or replacement state — and
// returns a descriptive error naming the first violated invariant.
//
// Audits exist because BTB bookkeeping bugs do not crash: a stale refcount
// or a mis-wired pointer silently shifts MPKI. The differential runner
// (internal/oracle) calls Audit every N steps, the core models call it when
// Config.AuditEvery is set, and tests call it after targeted corruption.
type Auditable interface {
	Audit() error
}

// StateDigester is implemented by designs that can hash their prediction
// state. Divergence reports embed the digest so two runs reaching the same
// step can be compared without dumping full state.
type StateDigester interface {
	StateDigest() uint64
}

// StateDigestOf returns the design's state digest, or 0 when the design
// does not expose one.
func StateDigestOf(tp TargetPredictor) uint64 {
	if d, ok := tp.(StateDigester); ok {
		return d.StateDigest()
	}
	return 0
}

// --- DedupTable ------------------------------------------------------------

// ValidSlot reports whether ptr dereferences to a live value (in range and
// written at least once since Reset).
func (t *DedupTable) ValidSlot(ptr int) bool {
	return ptr >= 0 && ptr < len(t.vals) && t.valid[ptr]
}

// Audit deep-checks the table's structural invariants: every valid slot's
// value must hash to the set holding it (otherwise Find/FindOrInsert can
// never locate it again — a silent dedup failure that duplicates values),
// and no two valid slots of a set may hold equal values (the defining
// deduplication property).
func (t *DedupTable) Audit() error {
	for s := 0; s < t.sets; s++ {
		base := s * t.ways
		for w := 0; w < t.ways; w++ {
			if !t.valid[base+w] {
				continue
			}
			v := t.vals[base+w]
			if home := t.set(v); home != s {
				return fmt.Errorf("btb: dedup slot %d holds %#x whose home set is %d, not %d",
					base+w, v, home, s)
			}
			for w2 := w + 1; w2 < t.ways; w2++ {
				if t.valid[base+w2] && t.vals[base+w2] == v {
					return fmt.Errorf("btb: dedup set %d stores %#x twice (ways %d and %d)",
						s, v, w, w2)
				}
			}
		}
	}
	return nil
}

// AuditRefcounts cross-checks the per-slot reference counters against an
// externally recomputed live-pointer census: live[ptr] must be the number of
// monitor entries currently pointing at ptr. Unsaturated counters (< 7)
// track exactly; saturated counters stick by design (§4.4.2's narrow-counter
// tradeoff) and carry no information, so they are skipped.
func (t *DedupTable) AuditRefcounts(live []int) error {
	if t.refs == nil {
		return nil
	}
	if len(live) != len(t.refs) {
		return fmt.Errorf("btb: refcount census covers %d slots, table has %d", len(live), len(t.refs))
	}
	for ptr, r := range t.refs {
		if r >= 7 {
			continue // saturated: conservatively live, no exact count
		}
		if int(r) != live[ptr] {
			return fmt.Errorf("btb: slot %d refcount %d but %d live pointer(s)", ptr, r, live[ptr])
		}
	}
	return nil
}

// --- Baseline --------------------------------------------------------------

// Audit implements Auditable: per-set tag uniqueness (a duplicated tag makes
// Lookup/Update race between two entries for one PC) and 57-bit-clean stored
// targets.
func (b *Baseline) Audit() error {
	for s := 0; s < b.sets; s++ {
		base := s * b.ways
		for w := 0; w < b.ways; w++ {
			e := &b.entries[base+w]
			if !e.valid {
				if b.scanTags[base+w] != scanInvalid {
					return fmt.Errorf("btb: baseline set %d way %d scan mirror holds tag %#x for a free way",
						s, w, b.scanTags[base+w])
				}
				continue
			}
			if b.scanTags[base+w] != e.tag {
				return fmt.Errorf("btb: baseline set %d way %d scan mirror %#x disagrees with tag %#x",
					s, w, b.scanTags[base+w], e.tag)
			}
			if uint64(e.target)&^addr.Mask != 0 {
				return fmt.Errorf("btb: baseline set %d way %d target %#x exceeds %d bits",
					s, w, uint64(e.target), addr.VABits)
			}
			if e.conf > 3 {
				return fmt.Errorf("btb: baseline set %d way %d confidence %d exceeds 2 bits", s, w, e.conf)
			}
			for w2 := w + 1; w2 < b.ways; w2++ {
				e2 := &b.entries[base+w2]
				if e2.valid && e2.tag == e.tag {
					return fmt.Errorf("btb: baseline set %d holds tag %#x twice (ways %d and %d)",
						s, e.tag, w, w2)
				}
			}
		}
	}
	return nil
}

// StateDigest implements StateDigester.
func (b *Baseline) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			continue
		}
		put(uint64(i))
		put(uint64(e.tag))
		put(uint64(e.target))
		put(uint64(e.conf))
	}
	return h.Sum64()
}

// --- DedupBTB --------------------------------------------------------------

// Audit implements Auditable: per-set monitor tag uniqueness, every live
// monitor pointer dereferenceable (slots never invalidate outside Reset, so
// an unreadable pointer is corruption, not the paper's benign value-reuse
// dangling), refcounts equal to the recomputed live-pointer census, and the
// target table's own dedup invariants.
func (d *DedupBTB) Audit() error {
	live := make([]int, d.targets.Entries())
	for s := 0; s < d.sets; s++ {
		base := s * d.ways
		for w := 0; w < d.ways; w++ {
			e := &d.entries[base+w]
			if !e.valid {
				if d.scanTags[base+w] != scanInvalid {
					return fmt.Errorf("btb: dedup monitor set %d way %d scan mirror holds tag %#x for a free way",
						s, w, d.scanTags[base+w])
				}
				continue
			}
			if d.scanTags[base+w] != e.tag {
				return fmt.Errorf("btb: dedup monitor set %d way %d scan mirror %#x disagrees with tag %#x",
					s, w, d.scanTags[base+w], e.tag)
			}
			if !d.targets.ValidSlot(int(e.ptr)) {
				return fmt.Errorf("btb: dedup monitor set %d way %d pointer %d does not dereference",
					s, w, e.ptr)
			}
			live[e.ptr]++
			for w2 := w + 1; w2 < d.ways; w2++ {
				e2 := &d.entries[base+w2]
				if e2.valid && e2.tag == e.tag {
					return fmt.Errorf("btb: dedup monitor set %d holds tag %#x twice (ways %d and %d)",
						s, e.tag, w, w2)
				}
			}
		}
	}
	if err := d.targets.AuditRefcounts(live); err != nil {
		return err
	}
	return d.targets.Audit()
}

// StateDigest implements StateDigester.
func (d *DedupBTB) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range d.entries {
		e := &d.entries[i]
		if !e.valid {
			continue
		}
		put(uint64(i))
		put(uint64(e.tag))
		put(uint64(e.ptr))
		if v, ok := d.targets.Get(int(e.ptr)); ok {
			put(v)
		}
	}
	return h.Sum64()
}

// --- Perfect ---------------------------------------------------------------

// Audit implements Auditable: the map-backed design only has to keep its
// stored targets 57-bit clean. Keys are visited in sorted order so the
// first reported violation is the same on every run.
func (p *Perfect) Audit() error {
	pcs := make([]addr.VA, 0, len(p.targets))
	for pc := range p.targets {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		e := p.targets[pc]
		if uint64(e.target)&^addr.Mask != 0 {
			return fmt.Errorf("btb: perfect entry %v target %#x exceeds %d bits",
				pc, uint64(e.target), addr.VABits)
		}
	}
	return nil
}

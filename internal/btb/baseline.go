package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/isa"
)

// Baseline is the conventional BTB described in §2: set-associative, probed
// with a hashed PC, carrying a restricted 12-bit tag, a full 57-bit target,
// a 2-bit confidence counter and SRRIP replacement. Only taken branches
// allocate entries (not-taken fallthroughs are computed trivially).
type Baseline struct {
	name string
	sets int
	ways int

	indexBits uint
	entries   []baseEntry // sets × ways
	// scanTags packs each way's tag (scanInvalid when free) into a dense
	// array the hot Lookup/probe scans walk instead of the entry structs.
	scanTags []addr.Tag
	repl     []replacer

	// GHRP state (only when Policy == PolicyGHRP): per-set predictive
	// replacement plus the shared signature tables, and a per-entry
	// reused-since-insertion bit used to train deadness.
	ghrp       []*ghrpRepl
	ghrpShared *ghrpTables
	reused     []bool

	// Probe memo: Lookup leaves its decomposed (set, tag) and matched way
	// for the immediately following Update of the same PC (the BPU's
	// probe→train sequence), which then skips the re-hash and re-scan.
	// One-shot: every Update consumes or invalidates it, because updates
	// mutate set contents. Scratch, not architectural: a wrong-path lookup
	// overwriting the memo only costs the next Update a re-probe.
	//
	//pdede:scratch
	memoPC addr.VA
	//pdede:scratch
	memoSet addr.SetIndex
	//pdede:scratch
	memoTag addr.Tag
	//pdede:scratch
	memoWay int32 // matched way, -1 on miss
	//pdede:scratch
	memoOK bool

	// storeReturns mirrors §5.7: if set, returns also allocate (no RAS).
	storeReturns bool
}

// baseEntry is field-ordered widest-first: the 4096-entry array is the
// baseline's dominant allocation, and this layout packs it at 24 bytes
// per entry instead of 32.
type baseEntry struct {
	tag    addr.Tag
	target addr.VA
	conf   conf
	valid  bool
}

// BaselineConfig sizes a baseline BTB.
type BaselineConfig struct {
	// Entries is the total entry count (must be sets*ways with sets a power
	// of two). The paper's baseline is 4096 entries, 8-way: 37.5 KiB.
	Entries int
	// Ways is the associativity (default 8).
	Ways int
	// StoreReturns also allocates return instructions (§5.7).
	StoreReturns bool
	// Policy selects the replacement policy (default SRRIP, as in the
	// paper; LRU and random support the replacement ablation).
	Policy PolicyKind
}

// NewBaseline builds the baseline BTB.
func NewBaseline(cfg BaselineConfig) (*Baseline, error) {
	if cfg.Ways == 0 {
		cfg.Ways = 8
	}
	if cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("btb: entries %d not divisible by ways %d", cfg.Entries, cfg.Ways)
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("btb: baseline sets %d not a power of two", sets)
	}
	b := &Baseline{
		name:         fmt.Sprintf("baseline-%dK", cfg.Entries/1024),
		sets:         sets,
		ways:         cfg.Ways,
		indexBits:    uint(bits.TrailingZeros(uint(sets))),
		entries:      make([]baseEntry, cfg.Entries),
		scanTags:     newScanTags(cfg.Entries),
		repl:         make([]replacer, sets),
		storeReturns: cfg.StoreReturns,
	}
	if cfg.Entries < 1024 {
		b.name = fmt.Sprintf("baseline-%d", cfg.Entries)
	}
	if cfg.Policy != PolicySRRIP {
		b.name += "-" + cfg.Policy.String()
	}
	if cfg.Policy == PolicyGHRP {
		b.ghrpShared = newGHRPTables()
		b.ghrp = make([]*ghrpRepl, sets)
		b.reused = make([]bool, cfg.Entries)
		for i := range b.ghrp {
			b.ghrp[i] = newGHRPRepl(cfg.Ways, b.ghrpShared)
		}
	} else {
		for i := range b.repl {
			b.repl[i] = newReplacer(cfg.Policy, cfg.Ways, baselineRRIPBits)
		}
	}
	return b, nil
}

// Name implements TargetPredictor.
func (b *Baseline) Name() string { return b.name }

// Lookup implements TargetPredictor.
//
//pdede:hot
func (b *Baseline) Lookup(pc addr.VA) Lookup {
	set, tag := addr.IndexTag(pc, b.indexBits, TagBits)
	b.memoPC, b.memoSet, b.memoTag, b.memoWay, b.memoOK = pc, set, tag, -1, true
	base := int(set) * b.ways
	for w, st := range b.scanTags[base : base+b.ways] {
		if st == tag {
			b.memoWay = int32(w)
			return Lookup{Hit: true, Target: b.entries[base+w].target}
		}
	}
	return Lookup{}
}

// probe resolves pc's (set, tag, matched way), reusing the Lookup memo when
// Update immediately follows Lookup for the same PC and re-deriving
// otherwise. The memo is consumed either way: the caller mutates the set.
//
//pdede:hot
func (b *Baseline) probe(pc addr.VA) (set addr.SetIndex, tag addr.Tag, way int) {
	if b.memoOK && b.memoPC == pc {
		b.memoOK = false
		return b.memoSet, b.memoTag, int(b.memoWay)
	}
	b.memoOK = false
	set, tag = addr.IndexTag(pc, b.indexBits, TagBits)
	way = -1
	base := int(set) * b.ways
	for w, st := range b.scanTags[base : base+b.ways] {
		if st == tag {
			way = w
			break
		}
	}
	return set, tag, way
}

// Update implements TargetPredictor. Taken branches allocate or retrain
// their entry; the confidence counter arbitrates target replacement for
// branches with multiple observed targets (indirects).
//
//pdede:hot
func (b *Baseline) Update(br isa.Branch, prior Lookup) {
	if !br.Taken {
		return
	}
	if br.Kind.IsReturn() && !b.storeReturns {
		return
	}
	set, tag, hit := b.probe(br.PC)
	base := int(set) * b.ways
	if hit >= 0 {
		w := hit
		e := &b.entries[base+w]
		if b.ghrp != nil {
			b.ghrp[set].touchPC(w, br.PC)
			b.reused[base+w] = true
		} else {
			b.repl[set].Touch(w)
		}
		if e.target == br.Target {
			e.conf = e.conf.inc()
			return
		}
		// Wrong target stored: decay confidence; replace the target only
		// once confidence is exhausted (protects dominant indirect targets).
		if e.conf > 0 {
			e.conf = e.conf.dec()
			return
		}
		e.target = br.Target
		e.conf = 0
		return
	}
	// Allocate.
	w := b.victim(set)
	b.entries[base+w] = baseEntry{valid: true, tag: tag, target: br.Target}
	b.scanTags[base+w] = tag
	if b.ghrp != nil {
		b.ghrp[set].insertPC(w, br.PC, b.reused[base+w])
		b.reused[base+w] = false
	} else {
		b.repl[set].Insert(w)
	}
}

//pdede:hot
func (b *Baseline) victim(set addr.SetIndex) int {
	base := int(set) * b.ways
	for w := 0; w < b.ways; w++ {
		if !b.entries[base+w].valid {
			return w
		}
	}
	if b.ghrp != nil {
		return b.ghrp[set].victim()
	}
	return b.repl[set].Victim()
}

// EntryBits returns the storage per baseline entry (Figure 2 layout; the
// replacement metadata cost follows the configured policy).
func (b *Baseline) EntryBits() uint64 {
	if b.ghrp != nil {
		return pidBits + TagBits + targetBits + confBits + b.ghrp[0].bits() + 1 // +reused
	}
	return pidBits + TagBits + targetBits + b.repl[0].Bits() + confBits
}

// StorageBits implements TargetPredictor.
func (b *Baseline) StorageBits() uint64 {
	bits := uint64(b.sets*b.ways) * b.EntryBits()
	if b.ghrpShared != nil {
		bits += uint64(len(b.ghrpShared.t1)+len(b.ghrpShared.t2)) * 2
	}
	return bits
}

// Entries returns the total capacity in entries.
func (b *Baseline) Entries() int { return b.sets * b.ways }

// Reset implements TargetPredictor.
func (b *Baseline) Reset() {
	b.memoOK = false
	for i := range b.entries {
		b.entries[i] = baseEntry{}
		b.scanTags[i] = scanInvalid
	}
	for _, r := range b.repl {
		if r != nil { // nil when GHRP manages replacement
			r.Reset()
		}
	}
	if b.ghrp != nil {
		for _, g := range b.ghrp {
			g.reset()
		}
		*b.ghrpShared = *newGHRPTables()
		for i := range b.reused {
			b.reused[i] = false
		}
	}
}

package btb

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/rng"
)

func TestGHRPConstructsAndRetains(t *testing.T) {
	b, err := NewBaseline(BaselineConfig{Entries: 256, Ways: 4, Policy: PolicyGHRP})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "baseline-256-ghrp" {
		t.Errorf("name = %q", b.Name())
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			pc := addr.Build(1, addr.PageNum(uint64(i)), 64)
			b.Update(takenBranch(pc, addr.Build(2, addr.PageNum(uint64(i)), 0)), Lookup{})
		}
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if b.Lookup(addr.Build(1, addr.PageNum(uint64(i)), 64)).Hit {
			hits++
		}
	}
	if hits < 60 {
		t.Errorf("GHRP retained only %d/100 fitting entries", hits)
	}
}

func TestGHRPStorageAccounted(t *testing.T) {
	g, _ := NewBaseline(BaselineConfig{Entries: 4096, Policy: PolicyGHRP})
	s, _ := NewBaseline(BaselineConfig{Entries: 4096, Policy: PolicySRRIP})
	if g.StorageBits() <= s.StorageBits() {
		t.Errorf("GHRP metadata unaccounted: %d vs %d", g.StorageBits(), s.StorageBits())
	}
	// Signatures (16b) + shared tables dominate the overhead.
	overhead := g.StorageBits() - s.StorageBits()
	if overhead < 4096*14 {
		t.Errorf("overhead %d bits suspiciously small", overhead)
	}
}

// GHRP must learn to victimize never-reused (scan) entries before hot ones.
func TestGHRPScanResistance(t *testing.T) {
	run := func(pol PolicyKind) int {
		b, _ := NewBaseline(BaselineConfig{Entries: 8, Ways: 8, Policy: pol})
		hot := make([]addr.VA, 4)
		for i := range hot {
			hot[i] = addr.Build(1, addr.PageNum(uint64(i)), 0)
		}
		r := rng.New(5)
		// Interleave hot reuse with one-shot scan branches so the tables see
		// both fates repeatedly.
		for step := 0; step < 4000; step++ {
			for _, pc := range hot {
				b.Update(takenBranch(pc, addr.Build(2, 0, 0)), Lookup{})
			}
			scan := addr.Build(3, addr.PageNum(uint64(r.Intn(1<<16))), 0)
			b.Update(takenBranch(scan, addr.Build(2, 0, 0)), Lookup{})
		}
		hits := 0
		for _, pc := range hot {
			if b.Lookup(pc).Hit {
				hits++
			}
		}
		return hits
	}
	ghrp := run(PolicyGHRP)
	if ghrp < 3 {
		t.Errorf("GHRP kept only %d/4 hot entries under scan", ghrp)
	}
	// And it must not be worse than random replacement at this.
	if rnd := run(PolicyRandom); ghrp < rnd {
		t.Errorf("GHRP (%d) below random (%d) under scan", ghrp, rnd)
	}
}

func TestGHRPReset(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 64, Ways: 4, Policy: PolicyGHRP})
	pc := addr.Build(1, 2, 0x40)
	b.Update(takenBranch(pc, addr.Build(2, 0, 0)), Lookup{})
	b.Reset()
	if b.Lookup(pc).Hit {
		t.Error("hit after reset")
	}
}

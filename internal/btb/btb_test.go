package btb

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/isa"
)

func takenBranch(pc, target addr.VA) isa.Branch {
	return isa.Branch{PC: pc, Target: target, BlockLen: 4, Kind: isa.UncondDirect, Taken: true}
}

func TestSRRIPBasics(t *testing.T) {
	s := NewSRRIP(4, 2)
	// All ways start as victims.
	if v := s.Victim(nil); v != 0 {
		t.Errorf("first victim = %d, want 0", v)
	}
	s.Insert(0)
	s.Touch(1)
	// Way 2,3 still max → victim 2.
	if v := s.Victim(nil); v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
	s.Insert(2)
	s.Insert(3)
	// Now nothing at max: aging must pick the inserted (rrpv 2) before the
	// touched (rrpv 0).
	v := s.Victim(nil)
	if v == 1 {
		t.Errorf("victim picked recently touched way")
	}
}

func TestSRRIPCandidates(t *testing.T) {
	s := NewSRRIP(4, 2)
	s.Touch(0)
	s.Touch(1)
	if v := s.Victim([]int{0, 1}); v != 0 && v != 1 {
		t.Errorf("victim %d outside candidates", v)
	}
}

func TestSRRIPBits(t *testing.T) {
	if got := NewSRRIP(4, 2).Bits(); got != 2 {
		t.Errorf("Bits = %d, want 2", got)
	}
	if got := NewSRRIP(4, 3).Bits(); got != 3 {
		t.Errorf("Bits = %d, want 3", got)
	}
}

func TestBaselineHitAfterUpdate(t *testing.T) {
	b, err := NewBaseline(BaselineConfig{Entries: 512})
	if err != nil {
		t.Fatal(err)
	}
	pc := addr.Build(1, 2, 0x100)
	tgt := addr.Build(3, 4, 0x500)
	if l := b.Lookup(pc); l.Hit {
		t.Fatal("cold BTB hit")
	}
	b.Update(takenBranch(pc, tgt), Lookup{})
	l := b.Lookup(pc)
	if !l.Hit || l.Target != tgt {
		t.Fatalf("lookup after update = %+v", l)
	}
	if l.ExtraLatency != 0 {
		t.Errorf("baseline should be single-cycle, got extra %d", l.ExtraLatency)
	}
}

func TestBaselineNotTakenDoesNotAllocate(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 512})
	pc := addr.Build(1, 2, 0x100)
	br := isa.Branch{PC: pc, Target: addr.Build(1, 2, 0x50), BlockLen: 2, Kind: isa.CondDirect, Taken: false}
	b.Update(br, Lookup{})
	if b.Lookup(pc).Hit {
		t.Error("not-taken branch allocated an entry")
	}
}

func TestBaselineReturnsPolicy(t *testing.T) {
	pc := addr.Build(1, 2, 0x100)
	ret := isa.Branch{PC: pc, Target: addr.Build(1, 3, 0), BlockLen: 2, Kind: isa.Return, Taken: true}

	b, _ := NewBaseline(BaselineConfig{Entries: 512})
	b.Update(ret, Lookup{})
	if b.Lookup(pc).Hit {
		t.Error("return allocated despite RAS handling them")
	}

	b2, _ := NewBaseline(BaselineConfig{Entries: 512, StoreReturns: true})
	b2.Update(ret, Lookup{})
	if !b2.Lookup(pc).Hit {
		t.Error("StoreReturns config did not allocate a return")
	}
}

func TestBaselineConfidenceProtectsTarget(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 512})
	pc := addr.Build(1, 2, 0x100)
	t1 := addr.Build(3, 4, 0x500)
	t2 := addr.Build(5, 6, 0x700)
	// Train t1 three times: confidence 2.
	for i := 0; i < 3; i++ {
		b.Update(takenBranch(pc, t1), Lookup{})
	}
	// One observation of t2 must not displace t1.
	b.Update(takenBranch(pc, t2), Lookup{})
	if l := b.Lookup(pc); l.Target != t1 {
		t.Errorf("single wrong observation displaced confident target")
	}
	// Repeated t2 eventually wins.
	for i := 0; i < 4; i++ {
		b.Update(takenBranch(pc, t2), Lookup{})
	}
	if l := b.Lookup(pc); l.Target != t2 {
		t.Errorf("dominant new target never installed")
	}
}

func TestBaselineCapacityEviction(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 64, Ways: 4})
	// Insert far more branches than capacity.
	for i := 0; i < 1000; i++ {
		pc := addr.Build(1, addr.PageNum(uint64(i)), 0x10)
		b.Update(takenBranch(pc, addr.Build(2, 0, 0x20)), Lookup{})
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if b.Lookup(addr.Build(1, addr.PageNum(uint64(i)), 0x10)).Hit {
			hits++
		}
	}
	// Restricted 12-bit tags can alias, so a few probes may false-hit
	// beyond the true capacity; that is by design (§2).
	if hits == 0 || hits > 64+16 {
		t.Errorf("hits after thrash = %d, want in (0, ~64+aliasing]", hits)
	}
}

func TestBaselineStorage(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 4096})
	// Paper: 4K entries at 75 bits = 37.5 KiB.
	if got := b.StorageBits(); got != 4096*75 {
		t.Errorf("StorageBits = %d, want %d", got, 4096*75)
	}
	if kib := float64(b.StorageBits()) / 8 / 1024; kib != 37.5 {
		t.Errorf("baseline size = %v KiB, want 37.5", kib)
	}
}

func TestBaselineRejectsBadConfig(t *testing.T) {
	if _, err := NewBaseline(BaselineConfig{Entries: 100, Ways: 8}); err == nil {
		t.Error("non-divisible entries accepted")
	}
	if _, err := NewBaseline(BaselineConfig{Entries: 24, Ways: 8}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestBaselineReset(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 512})
	pc := addr.Build(1, 2, 0x100)
	b.Update(takenBranch(pc, addr.Build(1, 2, 0x10)), Lookup{})
	b.Reset()
	if b.Lookup(pc).Hit {
		t.Error("hit after Reset")
	}
}

// Property: the baseline never returns a target it was not trained with.
func TestBaselineNeverInventsTargets(t *testing.T) {
	b, _ := NewBaseline(BaselineConfig{Entries: 64, Ways: 4})
	trained := make(map[addr.VA]bool)
	f := func(pcRaw, tgtRaw uint64, probe uint64) bool {
		pc, tgt := addr.New(pcRaw), addr.New(tgtRaw)
		b.Update(takenBranch(pc, tgt), Lookup{})
		trained[tgt] = true
		l := b.Lookup(addr.New(probe))
		return !l.Hit || trained[l.Target]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDedupTableFindOrInsert(t *testing.T) {
	tt, err := NewDedupTable(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1, ev := tt.FindOrInsert(42)
	if ev {
		t.Error("insert into empty table evicted")
	}
	p2, _ := tt.FindOrInsert(42)
	if p1 != p2 {
		t.Error("same value produced different pointers")
	}
	v, ok := tt.Get(p1)
	if !ok || v != 42 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if _, ok := tt.Get(999); ok {
		t.Error("out-of-range Get succeeded")
	}
}

// Property: after FindOrInsert(v), Get returns v through the returned ptr.
func TestDedupTableRoundTrip(t *testing.T) {
	tt, _ := NewDedupTable(64, 4)
	f := func(v uint64) bool {
		p, _ := tt.FindOrInsert(v)
		got, ok := tt.Get(p)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the table never stores a value twice (dedup invariant).
func TestDedupTableNoDuplicates(t *testing.T) {
	tt, _ := NewDedupTable(64, 4)
	f := func(vs []uint64) bool {
		for _, v := range vs {
			tt.FindOrInsert(v)
		}
		seen := map[uint64]int{}
		for p := 0; p < tt.Entries(); p++ {
			if v, ok := tt.Get(p); ok {
				seen[v]++
				if seen[v] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDedupTableEviction(t *testing.T) {
	tt, _ := NewDedupTable(4, 4) // fully associative, 4 entries
	evictions := 0
	for i := uint64(0); i < 100; i++ {
		if _, ev := tt.FindOrInsert(i); ev {
			evictions++
		}
	}
	if evictions != 96 {
		t.Errorf("evictions = %d, want 96", evictions)
	}
}

func TestDedupTablePtrBits(t *testing.T) {
	for _, c := range []struct{ entries, ways, want int }{
		{1024, 4, 10}, {4, 4, 2}, {16, 4, 4},
	} {
		tt, _ := NewDedupTable(c.entries, c.ways)
		if got := tt.PtrBits(); got != uint64(c.want) {
			t.Errorf("PtrBits(%d) = %d, want %d", c.entries, got, c.want)
		}
	}
}

func TestDedupBTBBasic(t *testing.T) {
	d, err := NewDedupBTB(DedupBTBConfig{MonitorEntries: 1024, MonitorWays: 8})
	if err != nil {
		t.Fatal(err)
	}
	pc1 := addr.Build(1, 2, 0x100)
	pc2 := addr.Build(1, 2, 0x200)
	shared := addr.Build(3, 4, 0x500)
	d.Update(takenBranch(pc1, shared), Lookup{})
	d.Update(takenBranch(pc2, shared), Lookup{})
	l1, l2 := d.Lookup(pc1), d.Lookup(pc2)
	if !l1.Hit || !l2.Hit || l1.Target != shared || l2.Target != shared {
		t.Fatalf("shared-target lookups = %+v / %+v", l1, l2)
	}
	if l1.ExtraLatency != 1 {
		t.Errorf("dedup lookup should cost one extra cycle")
	}
	// Dedup invariant: one stored copy of the shared target.
	copies := 0
	for p := 0; p < d.targets.Entries(); p++ {
		if v, ok := d.targets.Get(p); ok && addr.VA(v) == shared {
			copies++
		}
	}
	if copies != 1 {
		t.Errorf("shared target stored %d times", copies)
	}
}

func TestDedupBTBStorageSmallerPerEntry(t *testing.T) {
	d, _ := NewDedupBTB(DedupBTBConfig{MonitorEntries: 4096, MonitorWays: 8})
	b, _ := NewBaseline(BaselineConfig{Entries: 4096})
	if d.MonitorEntryBits() >= b.EntryBits() {
		t.Errorf("dedup monitor entry (%d bits) not smaller than baseline entry (%d bits)",
			d.MonitorEntryBits(), b.EntryBits())
	}
}

func TestDedupBTBDanglingPointer(t *testing.T) {
	// A tiny target table forces eviction; the monitor entry then yields a
	// wrong (current) value rather than crashing.
	d, _ := NewDedupBTB(DedupBTBConfig{MonitorEntries: 64, MonitorWays: 4, TargetEntries: 4, TargetWays: 4})
	pc := addr.Build(1, 2, 0x100)
	tgt := addr.Build(3, 4, 0x500)
	d.Update(takenBranch(pc, tgt), Lookup{})
	// Thrash the target table.
	for i := 0; i < 64; i++ {
		d.Update(takenBranch(addr.Build(2, addr.PageNum(uint64(i)), 0), addr.Build(4, addr.PageNum(uint64(i)), 0x10)), Lookup{})
	}
	l := d.Lookup(pc)
	if l.Hit && l.Target == tgt {
		// Possible but unlikely; either way must not panic.
		t.Log("target survived thrash")
	}
}

func TestPerfect(t *testing.T) {
	p := NewPerfect()
	pc := addr.Build(1, 2, 0x100)
	if p.Lookup(pc).Hit {
		t.Error("cold perfect BTB hit")
	}
	p.Update(takenBranch(pc, addr.Build(1, 2, 4)), Lookup{})
	if l := p.Lookup(pc); !l.Hit || l.Target != addr.Build(1, 2, 4) {
		t.Errorf("perfect lookup = %+v", l)
	}
	p.Reset()
	if p.Lookup(pc).Hit {
		t.Error("hit after reset")
	}
}

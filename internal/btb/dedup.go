package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
)

// DedupTable is a content-addressed value store: the building block for the
// deduplicated target, page and region tables. Values are located by
// hashing their content to a set and comparing ways; FindOrInsert returns a
// stable pointer (set×ways+way) that monitor entries store in place of the
// value itself.
//
// The table carries no tags and no reverse pointers: when a value is evicted
// the monitor entries pointing at it silently dangle and will produce a
// wrong target on their next use (§4.4.2 measures this at 0.06%; the design
// accepts the resteer instead of paying for invalidation hardware).
type DedupTable struct {
	sets, ways int
	setMask    uint64
	valid      []bool
	vals       []uint64
	repl       []*SRRIP

	// Evictions counts live values displaced since construction/Reset —
	// each one potentially leaves dangling monitor pointers.
	Evictions uint64

	// refs, when enabled, holds a 3-bit saturating reference count per
	// entry; victims prefer dead (ref==0) slots. Saturated counters stick
	// (conservatively treated as live), which a real design would accept as
	// the price of a narrow counter.
	refs []uint8
}

// EnableRefcounts switches the table to refcounted victim selection. The
// full-target DedupBTB needs this: unlike PDede's page/region components,
// whose tiny cardinality keeps eviction rare, a 57-bit target table churns
// at the monitor's allocation rate and would otherwise shred live pointers.
func (t *DedupTable) EnableRefcounts() {
	t.refs = make([]uint8, len(t.vals))
}

// Acquire notes a new monitor pointer to ptr.
func (t *DedupTable) Acquire(ptr int) {
	if t.refs == nil || ptr < 0 || ptr >= len(t.refs) {
		return
	}
	if t.refs[ptr] < 7 {
		t.refs[ptr]++
	}
}

// Release drops a monitor pointer to ptr. Saturated counters stay put.
func (t *DedupTable) Release(ptr int) {
	if t.refs == nil || ptr < 0 || ptr >= len(t.refs) {
		return
	}
	if t.refs[ptr] > 0 && t.refs[ptr] < 7 {
		t.refs[ptr]--
	}
}

// NewDedupTable builds a table with the given total entries and
// associativity. entries/ways must be a power of two; ways == entries gives
// a fully-associative table (the 4-entry Region-BTB).
func NewDedupTable(entries, ways int) (*DedupTable, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("btb: dedup table %d entries / %d ways invalid", entries, ways)
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("btb: dedup table sets %d not a power of two", sets)
	}
	t := &DedupTable{
		sets: sets, ways: ways,
		setMask: uint64(sets - 1),
		valid:   make([]bool, entries),
		vals:    make([]uint64, entries),
		repl:    NewSRRIPSlab(sets, ways, 2),
	}
	return t, nil
}

// Entries returns total capacity.
func (t *DedupTable) Entries() int { return t.sets * t.ways }

// PtrBits is the width of a pointer into this table.
func (t *DedupTable) PtrBits() uint64 {
	n := t.sets * t.ways
	if n <= 1 {
		return 1
	}
	return uint64(bits.Len(uint(n - 1)))
}

// set maps a value to its set index; inlines into every Find probe.
//
//pdede:inline
//pdede:noalloc
//pdede:nobce
func (t *DedupTable) set(v uint64) int {
	return int(addr.Mix64(v) & t.setMask)
}

// Find returns the pointer holding value v, if present.
//
// The guarded up-front window lets the prove pass elide every per-way
// bounds check in the scan (both windows share the length end-base, so
// one range loop covers both); the guard itself is unreachable under the
// sets*ways = len construction invariant.
//
//pdede:hot
//pdede:noalloc
//pdede:nobce
func (t *DedupTable) Find(v uint64) (int, bool) {
	s := t.set(v)
	base := s * t.ways
	end := base + t.ways
	if base < 0 || end < base || end > len(t.vals) || end > len(t.valid) {
		return 0, false
	}
	vals := t.vals[base:end]
	valid := t.valid[base:end]
	for w := range vals {
		if valid[w] && vals[w] == v {
			return base + w, true
		}
	}
	return 0, false
}

// FindOrInsert locates v, allocating (possibly evicting) if absent. evicted
// reports whether a live value was displaced — the event that creates
// dangling monitor pointers.
//
//pdede:hot
func (t *DedupTable) FindOrInsert(v uint64) (ptr int, evicted bool) {
	s := t.set(v)
	base := s * t.ways
	for w := 0; w < t.ways; w++ {
		if t.valid[base+w] && t.vals[base+w] == v {
			t.repl[s].Touch(w)
			return base + w, false
		}
	}
	for w := 0; w < t.ways; w++ {
		if !t.valid[base+w] {
			t.valid[base+w] = true
			t.vals[base+w] = v
			t.repl[s].Insert(w)
			return base + w, false
		}
	}
	if t.refs != nil {
		// Prefer a dead slot before displacing a live value.
		for w := 0; w < t.ways; w++ {
			if t.refs[base+w] == 0 {
				t.vals[base+w] = v
				t.repl[s].Insert(w)
				return base + w, false
			}
		}
	}
	w := t.repl[s].Victim(nil)
	t.vals[base+w] = v
	t.repl[s].Insert(w)
	t.Evictions++
	return base + w, true
}

// Get dereferences a pointer. ok is false for a never-written slot.
//
// The guard ranges ptr against both parallel arrays so the prove pass
// elides the loads' bounds checks; this dereference sits on every
// full-format Lookup and predictFrom, where it inlines.
//
//pdede:hot
//pdede:inline
//pdede:noalloc
//pdede:nobce
func (t *DedupTable) Get(ptr int) (uint64, bool) {
	if ptr < 0 || ptr >= len(t.vals) || ptr >= len(t.valid) || !t.valid[ptr] {
		return 0, false
	}
	return t.vals[ptr], true
}

// Touch promotes the pointed-at entry in its set's replacement order.
func (t *DedupTable) Touch(ptr int) {
	if ptr < 0 || ptr >= len(t.vals) {
		return
	}
	t.repl[ptr/t.ways].Touch(ptr % t.ways)
}

// Reset clears the table.
func (t *DedupTable) Reset() {
	for i := range t.valid {
		t.valid[i] = false
		t.vals[i] = 0
	}
	for _, r := range t.repl {
		r.Reset()
	}
	t.Evictions = 0
	if t.refs != nil {
		for i := range t.refs {
			t.refs[i] = 0
		}
	}
}

// StorageBits returns the table's storage given the payload width per value
// (pointer-table entries also carry their SRRIP bits, plus the reference
// counter when enabled).
func (t *DedupTable) StorageBits(valueBits uint64) uint64 {
	per := valueBits + t.repl[0].Bits()
	if t.refs != nil {
		per += 3
	}
	return uint64(t.sets*t.ways) * per
}

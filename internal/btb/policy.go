package btb

import "fmt"

// PolicyKind selects a replacement policy for the baseline BTB. The paper
// uses SRRIP and cites replacement-policy work (e.g. GHRP) as orthogonal;
// the alternatives here support the repository's replacement ablation.
type PolicyKind uint8

const (
	// PolicySRRIP is Static Re-Reference Interval Prediction (default).
	PolicySRRIP PolicyKind = iota
	// PolicyLRU is true least-recently-used.
	PolicyLRU
	// PolicyRandom evicts a pseudo-random way.
	PolicyRandom
	// PolicyGHRP is a simplified predictive replacement policy in the
	// spirit of GHRP (see ghrp.go).
	PolicyGHRP
)

func (k PolicyKind) String() string {
	switch k {
	case PolicySRRIP:
		return "srrip"
	case PolicyLRU:
		return "lru"
	case PolicyRandom:
		return "random"
	case PolicyGHRP:
		return "ghrp"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// replacer manages the replacement order of one set.
type replacer interface {
	// Touch records a hit on way w.
	Touch(w int)
	// Insert records an allocation into way w.
	Insert(w int)
	// Victim returns the way to replace.
	Victim() int
	// Bits is the metadata cost per way.
	Bits() uint64
	// Reset clears the state.
	Reset()
}

// newReplacer builds per-set replacement state.
func newReplacer(kind PolicyKind, ways int, rripBits uint) replacer {
	switch kind {
	case PolicyLRU:
		return &lruRepl{stamp: make([]uint64, ways)}
	case PolicyRandom:
		return &randRepl{ways: ways, state: 0x9e3779b9}
	default:
		return &srripRepl{s: NewSRRIP(ways, rripBits)}
	}
}

type srripRepl struct{ s *SRRIP }

func (r *srripRepl) Touch(w int)  { r.s.Touch(w) }
func (r *srripRepl) Insert(w int) { r.s.Insert(w) }
func (r *srripRepl) Victim() int  { return r.s.Victim(nil) }
func (r *srripRepl) Bits() uint64 { return r.s.Bits() }
func (r *srripRepl) Reset() {
	for w := range r.s.rrpv {
		r.s.rrpv[w] = r.s.max
	}
}

// lruRepl holds a logical timestamp per way; the victim is the oldest.
type lruRepl struct {
	stamp []uint64
	clock uint64
}

func (r *lruRepl) Touch(w int) {
	r.clock++
	r.stamp[w] = r.clock
}
func (r *lruRepl) Insert(w int) { r.Touch(w) }
func (r *lruRepl) Victim() int {
	v, oldest := 0, ^uint64(0)
	for w, s := range r.stamp {
		if s < oldest {
			oldest, v = s, w
		}
	}
	return v
}

// Bits models log2(ways) recency bits per way (a hardware LRU stack).
func (r *lruRepl) Bits() uint64 {
	b := uint64(0)
	for n := len(r.stamp) - 1; n > 0; n >>= 1 {
		b++
	}
	return b
}

func (r *lruRepl) Reset() {
	for w := range r.stamp {
		r.stamp[w] = 0
	}
	r.clock = 0
}

// randRepl evicts pseudo-randomly (xorshift32 per set).
type randRepl struct {
	ways  int
	state uint32
}

func (r *randRepl) Touch(int)  {}
func (r *randRepl) Insert(int) {}

//pdede:bitwidth-ok xorshift32 generator constants, not address-field widths
func (r *randRepl) Victim() int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 17
	r.state ^= r.state << 5
	return int(r.state>>1) % r.ways
}
func (r *randRepl) Bits() uint64 { return 0 }
func (r *randRepl) Reset()       { r.state = 0x9e3779b9 }

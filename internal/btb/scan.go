package btb

import "repro/internal/addr"

// Packed tag-scan mirrors. The hot set scan in Lookup/probe walks a dense
// []addr.Tag of tags (8 bytes per way) instead of the full entry structs,
// with invalid ways holding an impossible sentinel so the scan needs no
// separate valid check. Tags are TagBits (12) wide, so all-ones never
// collides with a real tag. Writers keep the mirror in sync at every entry
// (in)validation; the audits cross-check it.
const scanInvalid = addr.Tag(^uint64(0))

// newScanTags allocates a mirror of n ways, all invalid.
func newScanTags(n int) []addr.Tag {
	s := make([]addr.Tag, n)
	for i := range s {
		s[i] = scanInvalid
	}
	return s
}

package btb

import "repro/internal/addr"

// ghrpRepl is a simplified GHRP-style predictive replacement policy
// (Ajorpaz et al., ISCA'18 — "Exploring predictive replacement policies for
// instruction cache and branch target buffer", cited by the paper as
// orthogonal work). Each entry carries a *signature* hashing its PC with
// the global history at insertion; two small counter tables vote on whether
// a signature's entries tend to die without reuse. Victim selection prefers
// predicted-dead entries and falls back to SRRIP order.
//
// The policy is exercised by the ext-repl ablation; the paper's designs all
// use plain SRRIP.
type ghrpRepl struct {
	srrip *SRRIP
	sig   []uint16

	tables *ghrpTables
}

// ghrpTables are shared across all sets of one BTB (global predictor state).
type ghrpTables struct {
	t1, t2  []uint8 // 2-bit dead counters, differently hashed
	history uint64
}

const ghrpTableBits = 12

func newGHRPTables() *ghrpTables {
	n := 1 << ghrpTableBits
	return &ghrpTables{t1: make([]uint8, n), t2: make([]uint8, n)}
}

// note folds a touched signature into the global history.
func (g *ghrpTables) note(sig uint16) {
	g.history = g.history<<3 ^ uint64(sig)
}

// signature mixes a PC with the current history.
func (g *ghrpTables) signature(pc addr.VA) uint16 {
	return uint16(addr.Mix64(uint64(pc)>>1^g.history*0x9e3779b97f4a7c15) & 0xffff) //pdede:bitwidth-ok 16-bit GHRP signature, not an address field
}

func (g *ghrpTables) idx1(sig uint16) int { return int(sig) & (len(g.t1) - 1) }
func (g *ghrpTables) idx2(sig uint16) int {
	return int(addr.Mix64(uint64(sig))) & (len(g.t2) - 1)
}

// dead reports whether both tables predict the signature dies unreused.
func (g *ghrpTables) dead(sig uint16) bool {
	return g.t1[g.idx1(sig)] >= 2 && g.t2[g.idx2(sig)] >= 2
}

// trainDead is called when an entry is evicted without having been reused.
func (g *ghrpTables) trainDead(sig uint16) {
	if i := g.idx1(sig); g.t1[i] < 3 {
		g.t1[i]++
	}
	if i := g.idx2(sig); g.t2[i] < 3 {
		g.t2[i]++
	}
}

// trainLive is called when an entry is reused after insertion.
func (g *ghrpTables) trainLive(sig uint16) {
	if i := g.idx1(sig); g.t1[i] > 0 {
		g.t1[i]--
	}
	if i := g.idx2(sig); g.t2[i] > 0 {
		g.t2[i]--
	}
}

func newGHRPRepl(ways int, tables *ghrpTables) *ghrpRepl {
	return &ghrpRepl{
		srrip:  NewSRRIP(ways, 2),
		sig:    make([]uint16, ways),
		tables: tables,
	}
}

// touchPC records a hit of pc on way w.
func (r *ghrpRepl) touchPC(w int, pc addr.VA) {
	r.srrip.Touch(w)
	r.tables.trainLive(r.sig[w])
	r.tables.note(r.sig[w])
}

// insertPC records an allocation of pc into way w, training the tables with
// the displaced entry's fate (evicted entries that were never reused since
// insertion keep their long-re-reference RRPV, approximated here by "was a
// SRRIP victim").
func (r *ghrpRepl) insertPC(w int, pc addr.VA, displacedLive bool) {
	if r.sig[w] != 0 && !displacedLive {
		r.tables.trainDead(r.sig[w])
	}
	r.sig[w] = r.tables.signature(pc)
	r.srrip.Insert(w)
	r.tables.note(r.sig[w])
}

// victim prefers a predicted-dead way, falling back to SRRIP.
func (r *ghrpRepl) victim() int {
	for w, s := range r.sig {
		if s != 0 && r.tables.dead(s) {
			return w
		}
	}
	return r.srrip.Victim(nil)
}

// bits per way: 2 SRRIP + 16 signature (the global tables add 2×2^12×2
// bits shared across the whole BTB, accounted by the caller).
func (r *ghrpRepl) bits() uint64 { return 2 + 16 }

func (r *ghrpRepl) reset() {
	for w := range r.sig {
		r.sig[w] = 0
		r.srrip.rrpv[w] = r.srrip.max
	}
}

package btb

// SRRIP implements Static Re-Reference Interval Prediction replacement
// (Jaleel et al., ISCA'10) over the ways of one set. Each way carries an
// RRPV (re-reference prediction value); hits promote to 0, insertions start
// at max-1 ("long re-reference"), and victims are ways holding max,
// aging every way until one appears.
type SRRIP struct {
	rrpv []uint8
	max  uint8
	all  []int
}

// NewSRRIP builds replacement state for `ways` ways with `bits`-bit RRPVs
// (the paper uses 2-bit for PDede structures, 3-bit for the baseline BTB).
func NewSRRIP(ways int, bits uint) *SRRIP {
	if ways <= 0 {
		panic("btb: SRRIP needs at least one way")
	}
	if bits == 0 || bits > 8 {
		panic("btb: SRRIP RRPV bits out of range")
	}
	s := &SRRIP{rrpv: make([]uint8, ways), max: uint8(1<<bits) - 1, all: make([]int, ways)}
	for i := range s.rrpv {
		s.rrpv[i] = s.max // empty ways are immediate victims
		s.all[i] = i
	}
	return s
}

// Touch marks a hit on way w (near-immediate re-reference predicted).
func (s *SRRIP) Touch(w int) { s.rrpv[w] = 0 }

// Insert marks way w as freshly allocated with a long re-reference interval.
func (s *SRRIP) Insert(w int) { s.rrpv[w] = s.max - 1 }

// Victim selects the way to replace among the candidate ways (nil means all
// ways), aging RRPVs as needed. It always terminates: aging eventually
// drives some candidate to max.
func (s *SRRIP) Victim(candidates []int) int {
	if candidates == nil {
		candidates = s.all
	}
	if len(candidates) == 0 {
		panic("btb: SRRIP victim with no candidates")
	}
	for {
		for _, w := range candidates {
			if s.rrpv[w] >= s.max {
				return w
			}
		}
		for _, w := range candidates {
			s.rrpv[w]++
		}
	}
}

// Reset returns every way to max RRPV ("empty", immediate victim) in place,
// so slab-backed state (NewSRRIPSlab) stays slab-backed.
func (s *SRRIP) Reset() {
	for i := range s.rrpv {
		s.rrpv[i] = s.max
	}
}

// NewSRRIPSlab builds per-set SRRIP state for n sets out of one shared RRPV
// slab and one shared candidate list (read-only in Victim), collapsing the
// 3n allocations of n NewSRRIP calls into 3. The states are otherwise
// independent.
func NewSRRIPSlab(n, ways int, bits uint) []*SRRIP {
	if n <= 0 {
		panic("btb: SRRIP slab needs at least one set")
	}
	if ways <= 0 {
		panic("btb: SRRIP needs at least one way")
	}
	if bits == 0 || bits > 8 {
		panic("btb: SRRIP RRPV bits out of range")
	}
	max := uint8(1<<bits) - 1
	slab := make([]uint8, n*ways)
	for i := range slab {
		slab[i] = max
	}
	all := make([]int, ways)
	for i := range all {
		all[i] = i
	}
	objs := make([]SRRIP, n)
	out := make([]*SRRIP, n)
	for i := range objs {
		objs[i] = SRRIP{rrpv: slab[i*ways : (i+1)*ways : (i+1)*ways], max: max, all: all}
		out[i] = &objs[i]
	}
	return out
}

// Bits returns the replacement metadata bits per way.
func (s *SRRIP) Bits() uint64 {
	b := uint64(0)
	for v := s.max; v > 0; v >>= 1 {
		b++
	}
	return b
}

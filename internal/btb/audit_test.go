package btb

import (
	"strings"
	"testing"

	"repro/internal/addr"
)

// trainDedup drives n distinct taken branches through a DedupBTB, with some
// target sharing so the dedup table holds multi-reference values.
func trainDedup(t *testing.T, n int) *DedupBTB {
	t.Helper()
	d, err := NewDedupBTB(DedupBTBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// Distinct PCs; each target shared by exactly two PCs, keeping the
		// dedup refcounts at 2 — live and far from the saturation point.
		pc := addr.Build(1, addr.PageNum(uint64(i/256)), addr.PageOffset(uint64((i%256)*16)))
		target := addr.Build(2, addr.PageNum(uint64(i/512)), addr.PageOffset(uint64((i/2%256)*16)))
		d.Update(takenBranch(pc, target), d.Lookup(pc))
	}
	return d
}

func TestDedupBTBAuditCleanAfterTraining(t *testing.T) {
	d := trainDedup(t, 5000)
	if err := d.Audit(); err != nil {
		t.Fatalf("audit of a healthy design failed: %v", err)
	}
}

// TestAuditCatchesInjectedRefcountBug is the acceptance check for the audit
// subsystem: a deliberately corrupted reference counter — the classic silent
// bookkeeping bug, since predictions keep flowing — must be caught.
func TestAuditCatchesInjectedRefcountBug(t *testing.T) {
	d := trainDedup(t, 2000)
	if err := d.Audit(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	// Find a live, unsaturated counter and skew it by one, as a missing
	// Acquire/Release pairing in an eviction path would.
	victim := -1
	for ptr, r := range d.targets.refs {
		if d.targets.valid[ptr] && r >= 1 && r < 7 {
			victim = ptr
			break
		}
	}
	if victim < 0 {
		t.Fatal("no live unsaturated refcount to corrupt; enlarge the training run")
	}
	if d.targets.refs[victim] < 6 {
		d.targets.refs[victim]++
	} else {
		d.targets.refs[victim]--
	}
	err := d.Audit()
	if err == nil {
		t.Fatal("audit accepted a corrupted refcount")
	}
	if !strings.Contains(err.Error(), "refcount") {
		t.Errorf("audit error does not name the refcount invariant: %v", err)
	}
}

func TestAuditCatchesDanglingMonitorPointer(t *testing.T) {
	d := trainDedup(t, 2000)
	for i := range d.entries {
		if d.entries[i].valid {
			d.entries[i].ptr = int32(d.targets.Entries()) // out of range
			break
		}
	}
	if err := d.Audit(); err == nil {
		t.Fatal("audit accepted an out-of-range monitor pointer")
	}
}

func TestAuditCatchesDuplicateMonitorTag(t *testing.T) {
	d := trainDedup(t, 5000)
	// Duplicate one valid entry's tag into another valid way of its set.
	corrupted := false
outer:
	for s := 0; s < d.sets; s++ {
		base := s * d.ways
		first := -1
		for w := 0; w < d.ways; w++ {
			if !d.entries[base+w].valid {
				continue
			}
			if first < 0 {
				first = base + w
				continue
			}
			d.entries[base+w].tag = d.entries[first].tag
			corrupted = true
			break outer
		}
	}
	if !corrupted {
		t.Fatal("no set with two valid entries; enlarge the training run")
	}
	if err := d.Audit(); err == nil {
		t.Fatal("audit accepted a duplicated tag")
	}
}

func TestDedupTableAuditCatchesMisplacedValue(t *testing.T) {
	tab, err := NewDedupTable(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 100; v++ {
		tab.FindOrInsert(v)
	}
	if err := tab.Audit(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	// Overwrite a valid slot with a value whose home set is elsewhere.
	for ptr := range tab.vals {
		if !tab.valid[ptr] {
			continue
		}
		s := ptr / tab.ways
		v := uint64(1000)
		for tab.set(v) == s {
			v++
		}
		tab.vals[ptr] = v
		break
	}
	if err := tab.Audit(); err == nil {
		t.Fatal("audit accepted a value outside its home set")
	}
}

func TestBaselineAuditCatchesMalformedTarget(t *testing.T) {
	b, err := NewBaseline(BaselineConfig{Entries: 512})
	if err != nil {
		t.Fatal(err)
	}
	pc := addr.Build(1, 2, 0x100)
	b.Update(takenBranch(pc, addr.Build(3, 4, 0x200)), Lookup{})
	if err := b.Audit(); err != nil {
		t.Fatalf("pre-corruption audit failed: %v", err)
	}
	for i := range b.entries {
		if b.entries[i].valid {
			b.entries[i].target = addr.VA(uint64(1) << addr.VABits) // bit 57
			break
		}
	}
	if err := b.Audit(); err == nil {
		t.Fatal("audit accepted a target above the 57-bit VA space")
	}
}

func TestStateDigestTracksState(t *testing.T) {
	d1 := trainDedup(t, 1000)
	d2 := trainDedup(t, 1000)
	if d1.StateDigest() != d2.StateDigest() {
		t.Error("identical training produced different digests")
	}
	d3 := trainDedup(t, 1001)
	if d1.StateDigest() == d3.StateDigest() {
		t.Error("different training produced identical digests")
	}
}

package btb

import (
	"repro/internal/addr"
	"repro/internal/isa"
)

// Perfect is an idealized, unbounded BTB used as a simulation upper bound
// and in tests: an infinite-capacity baseline with the same
// confidence-guarded target replacement, so the only remaining misses are
// compulsory (first encounter) and genuine target changes on indirect
// branches. First encounters still miss — a cold BTB cannot know targets —
// which matches the paper's miss definition.
type Perfect struct {
	targets map[addr.VA]*perfectEntry
}

type perfectEntry struct {
	target addr.VA
	conf   conf
}

// NewPerfect builds an empty perfect BTB.
func NewPerfect() *Perfect {
	return &Perfect{targets: make(map[addr.VA]*perfectEntry)}
}

// Name implements TargetPredictor.
func (p *Perfect) Name() string { return "perfect" }

// Lookup implements TargetPredictor.
func (p *Perfect) Lookup(pc addr.VA) Lookup {
	e, ok := p.targets[pc]
	if !ok {
		return Lookup{}
	}
	return Lookup{Hit: true, Target: e.target}
}

// Update implements TargetPredictor.
func (p *Perfect) Update(b isa.Branch, prior Lookup) {
	if !b.Taken || b.Kind.IsReturn() {
		return
	}
	e, ok := p.targets[b.PC]
	if !ok {
		p.targets[b.PC] = &perfectEntry{target: b.Target}
		return
	}
	if e.target == b.Target {
		e.conf = e.conf.inc()
		return
	}
	if e.conf > 0 {
		e.conf = e.conf.dec()
		return
	}
	e.target = b.Target
}

// StorageBits implements TargetPredictor (idealized hardware: unreported).
func (p *Perfect) StorageBits() uint64 { return 0 }

// Reset implements TargetPredictor.
func (p *Perfect) Reset() { p.targets = make(map[addr.VA]*perfectEntry) }

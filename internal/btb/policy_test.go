package btb

import (
	"testing"

	"repro/internal/addr"
)

func TestPolicyNames(t *testing.T) {
	if PolicySRRIP.String() != "srrip" || PolicyLRU.String() != "lru" || PolicyRandom.String() != "random" {
		t.Error("policy names wrong")
	}
	if PolicyKind(9).String() == "" {
		t.Error("unknown policy unnamed")
	}
}

func TestLRUVictimIsOldest(t *testing.T) {
	r := newReplacer(PolicyLRU, 4, 3)
	r.Insert(0)
	r.Insert(1)
	r.Insert(2)
	r.Insert(3)
	r.Touch(0) // 1 is now the oldest
	if v := r.Victim(); v != 1 {
		t.Errorf("LRU victim = %d, want 1", v)
	}
	r.Reset()
	if v := r.Victim(); v != 0 {
		t.Errorf("after reset victim = %d, want 0", v)
	}
}

func TestRandomVictimInRange(t *testing.T) {
	r := newReplacer(PolicyRandom, 5, 3)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := r.Victim()
		if v < 0 || v >= 5 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Errorf("random victims covered only %d ways", len(seen))
	}
}

func TestPolicyBits(t *testing.T) {
	if b := newReplacer(PolicySRRIP, 8, 3).Bits(); b != 3 {
		t.Errorf("srrip bits = %d", b)
	}
	if b := newReplacer(PolicyLRU, 8, 3).Bits(); b != 3 {
		t.Errorf("lru bits = %d, want 3 (log2 ways)", b)
	}
	if b := newReplacer(PolicyRandom, 8, 3).Bits(); b != 0 {
		t.Errorf("random bits = %d", b)
	}
}

func TestBaselinePolicies(t *testing.T) {
	for _, pol := range []PolicyKind{PolicySRRIP, PolicyLRU, PolicyRandom} {
		b, err := NewBaseline(BaselineConfig{Entries: 256, Ways: 4, Policy: pol})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		// Basic retention under a fitting working set.
		for round := 0; round < 3; round++ {
			for i := 0; i < 100; i++ {
				pc := addr.Build(1, addr.PageNum(uint64(i)), 64)
				b.Update(takenBranch(pc, addr.Build(2, addr.PageNum(uint64(i)), 0)), Lookup{})
			}
		}
		hits := 0
		for i := 0; i < 100; i++ {
			if b.Lookup(addr.Build(1, addr.PageNum(uint64(i)), 64)).Hit {
				hits++
			}
		}
		if hits < 60 {
			t.Errorf("%v retained only %d/100 fitting entries", pol, hits)
		}
		if pol != PolicySRRIP && b.Name() == "baseline-256" {
			t.Errorf("%v: name does not reflect policy", pol)
		}
	}
}

// LRU and SRRIP must behave differently under a scanning pattern (the
// reason SRRIP exists): a scan larger than associativity evicts everything
// under LRU but not under SRRIP's long re-reference insertion.
func TestScanResistanceDiffers(t *testing.T) {
	run := func(pol PolicyKind) int {
		b, _ := NewBaseline(BaselineConfig{Entries: 8, Ways: 8, Policy: pol})
		// Hot set of 4, touched often.
		hot := make([]addr.VA, 4)
		for i := range hot {
			hot[i] = addr.Build(1, addr.PageNum(uint64(i)), 0)
		}
		for r := 0; r < 8; r++ {
			for _, pc := range hot {
				b.Update(takenBranch(pc, addr.Build(2, 0, 0)), Lookup{})
			}
		}
		// One long scan.
		for i := 0; i < 64; i++ {
			b.Update(takenBranch(addr.Build(3, addr.PageNum(uint64(i)), 0), addr.Build(2, 0, 0)), Lookup{})
		}
		hits := 0
		for _, pc := range hot {
			if b.Lookup(pc).Hit {
				hits++
			}
		}
		return hits
	}
	srrip, lru := run(PolicySRRIP), run(PolicyLRU)
	if srrip < lru {
		t.Errorf("SRRIP (%d hot survivors) not more scan-resistant than LRU (%d)", srrip, lru)
	}
}

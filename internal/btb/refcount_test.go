package btb

import "testing"

func TestRefcountVictimPrefersDead(t *testing.T) {
	tt, _ := NewDedupTable(4, 4)
	tt.EnableRefcounts()
	// Fill with four values; acquire three of them.
	ptrs := make([]int, 4)
	for i := uint64(0); i < 4; i++ {
		p, _ := tt.FindOrInsert(100 + i)
		ptrs[i] = p
		if i != 2 {
			tt.Acquire(p)
		}
	}
	// A fifth value must displace the unreferenced one (value 102).
	p5, evicted := tt.FindOrInsert(999)
	if evicted {
		t.Error("dead-slot reuse reported as eviction")
	}
	if p5 != ptrs[2] {
		t.Errorf("victim = slot %d, want the dead slot %d", p5, ptrs[2])
	}
	for i, p := range ptrs {
		if i == 2 {
			continue
		}
		if v, ok := tt.Get(p); !ok || v != 100+uint64(i) {
			t.Errorf("live value %d displaced", i)
		}
	}
}

func TestRefcountAllLiveFallsBackToEviction(t *testing.T) {
	tt, _ := NewDedupTable(4, 4)
	tt.EnableRefcounts()
	for i := uint64(0); i < 4; i++ {
		p, _ := tt.FindOrInsert(i)
		tt.Acquire(p)
	}
	if _, evicted := tt.FindOrInsert(42); !evicted {
		t.Error("all-live table did not report an eviction")
	}
}

func TestRefcountReleaseMakesSlotDead(t *testing.T) {
	tt, _ := NewDedupTable(4, 4)
	tt.EnableRefcounts()
	p, _ := tt.FindOrInsert(7)
	tt.Acquire(p)
	tt.Release(p)
	// Fill the rest and acquire them.
	for i := uint64(100); i < 103; i++ {
		q, _ := tt.FindOrInsert(i)
		tt.Acquire(q)
	}
	if got, _ := tt.FindOrInsert(999); got != p {
		t.Errorf("released slot %d not chosen as victim (got %d)", p, got)
	}
}

func TestRefcountSaturationSticks(t *testing.T) {
	tt, _ := NewDedupTable(4, 4)
	tt.EnableRefcounts()
	p, _ := tt.FindOrInsert(7)
	for i := 0; i < 10; i++ {
		tt.Acquire(p)
	}
	// Saturated at 7: releases no longer reach zero (conservatively live).
	for i := 0; i < 10; i++ {
		tt.Release(p)
	}
	for i := uint64(100); i < 103; i++ {
		q, _ := tt.FindOrInsert(i)
		tt.Acquire(q)
	}
	got, evicted := tt.FindOrInsert(999)
	if got == p && !evicted {
		t.Error("saturated slot treated as dead")
	}
}

func TestRefcountStorageCost(t *testing.T) {
	plain, _ := NewDedupTable(64, 4)
	counted, _ := NewDedupTable(64, 4)
	counted.EnableRefcounts()
	if counted.StorageBits(57) != plain.StorageBits(57)+64*3 {
		t.Errorf("refcount storage accounting wrong: %d vs %d",
			counted.StorageBits(57), plain.StorageBits(57))
	}
}

func TestRefcountNoopsWhenDisabled(t *testing.T) {
	tt, _ := NewDedupTable(4, 4)
	// Without EnableRefcounts these must be safe no-ops.
	p, _ := tt.FindOrInsert(7)
	tt.Acquire(p)
	tt.Release(p)
	tt.Acquire(-1)
	tt.Release(1 << 20)
}

// Package btb defines the branch-target-predictor interface shared by every
// BTB organisation in this repository and implements the paper's baseline: a
// set-associative, SRRIP-managed, restricted-tag BTB (§2), plus the
// full-target deduplicated design used as the first step of the Figure 11a
// ablation.
package btb

import (
	"repro/internal/addr"
	"repro/internal/isa"
)

// Lookup is the outcome of probing a target predictor with a branch PC.
type Lookup struct {
	// Hit reports whether the structure produced a target prediction.
	Hit bool
	// Target is the predicted target (valid only when Hit).
	Target addr.VA
	// ExtraLatency is the number of cycles beyond the single-cycle base
	// lookup that producing this prediction required (e.g. PDede's
	// sequential BTBM→Page-BTB access costs one extra cycle).
	ExtraLatency int
}

// TargetPredictor is a BTB-like structure: probed with a branch PC at
// prediction time and trained with the resolved branch at update time.
//
// Implementations are sequential state machines: the core calls Lookup and
// Update in program order, once per dynamic branch. Lookup must not mutate
// replacement state in a way that assumes the prediction was used (the call
// itself models the BPU read).
type TargetPredictor interface {
	// Name identifies the design in reports.
	Name() string
	// Lookup probes the structure for branch pc.
	Lookup(pc addr.VA) Lookup
	// Update trains the structure with a resolved branch. prior is the
	// Lookup the predictor returned for this branch, letting designs update
	// confidence and replacement against what they actually predicted.
	Update(b isa.Branch, prior Lookup)
	// StorageBits returns the total storage the design consumes.
	StorageBits() uint64
	// Reset clears all prediction state.
	Reset()
}

// TagBits is the restricted tag width used by all designs (§2: 12-bit tags
// with a good hash keep aliasing-induced resteers rare without paying for
// full tags).
const TagBits = 12

// Baseline entry metadata widths (Figure 2): PID(1) + SRRIP(3) + conf(2).
const (
	pidBits          = 1
	baselineRRIPBits = 3
	confBits         = 2
	targetBits       = 57
	offsetBits       = 12
)

// conf is a saturating 2-bit confidence counter.
type conf uint8

func (c conf) inc() conf {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c conf) dec() conf {
	if c > 0 {
		return c - 1
	}
	return c
}

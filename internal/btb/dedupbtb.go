package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/isa"
)

// DedupBTB is the first Figure 11a ablation step: a monitor indexed by
// branch PC whose entries point into a deduplicated table of *full* 57-bit
// targets. Because ~67% of targets are unique (Figure 7), the target table
// holds fewer entries than the monitor and the freed storage buys more
// monitor entries at iso-storage — but without partitioning the savings are
// modest (the paper measures only 1.6% IPC).
//
// The two sequential structure accesses cost one extra cycle, like PDede's
// pointer path.
type DedupBTB struct {
	name      string
	sets      int
	ways      int
	indexBits uint

	entries []dedupEntry
	// scanTags packs each way's tag (scanInvalid when free) into a dense
	// array the hot Lookup/probe scans walk instead of the entry structs.
	scanTags []addr.Tag
	repl     []*SRRIP
	targets  *DedupTable

	// Probe memo, as in Baseline: Lookup's (set, tag, way) reused by the
	// immediately following Update of the same PC. One-shot. Scratch, not
	// architectural: a wrong-path lookup overwriting it only costs a
	// re-probe.
	//
	//pdede:scratch
	memoPC addr.VA
	//pdede:scratch
	memoSet addr.SetIndex
	//pdede:scratch
	memoTag addr.Tag
	//pdede:scratch
	memoWay int32
	//pdede:scratch
	memoOK bool
}

// dedupEntry is field-ordered widest-first so the monitor array packs at
// 16 bytes per entry instead of 24.
type dedupEntry struct {
	tag   addr.Tag
	ptr   int32
	conf  conf
	valid bool
}

// DedupBTBConfig sizes the design.
type DedupBTBConfig struct {
	// MonitorEntries is the monitor capacity (sets*ways, sets power of two).
	MonitorEntries int
	// MonitorWays is the monitor associativity (default 8).
	MonitorWays int
	// TargetEntries is the dedup target table capacity (default
	// MonitorEntries/2, reflecting the measured duplicate share).
	TargetEntries int
	// TargetWays is the target table associativity (default 8).
	TargetWays int
}

// NewDedupBTB builds the design.
func NewDedupBTB(cfg DedupBTBConfig) (*DedupBTB, error) {
	if cfg.MonitorEntries == 0 {
		cfg.MonitorEntries = 4608 // 512 sets × 9 ways: iso-storage vs 4K baseline
		if cfg.MonitorWays == 0 {
			cfg.MonitorWays = 9
		}
	}
	if cfg.MonitorWays == 0 {
		cfg.MonitorWays = 8
	}
	if cfg.TargetEntries == 0 {
		// ~67% of targets are unique (Figure 7), but the iso-storage budget
		// (37.5 KiB) only affords ~55% once the 62-bit refcounted target
		// entries are paid for: 2560 entries (256 sets × 10 ways) lands the
		// total at 35.7 KiB. The undersized table is part of why
		// full-target dedup alone underwhelms (§5.3 / Figure 11a).
		cfg.TargetEntries = 2560
		if cfg.TargetWays == 0 {
			cfg.TargetWays = 10
		}
	}
	if cfg.TargetWays == 0 {
		cfg.TargetWays = 6
	}
	if cfg.MonitorEntries <= 0 || cfg.MonitorEntries%cfg.MonitorWays != 0 {
		return nil, fmt.Errorf("btb: dedup monitor %d entries / %d ways invalid",
			cfg.MonitorEntries, cfg.MonitorWays)
	}
	sets := cfg.MonitorEntries / cfg.MonitorWays
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("btb: dedup monitor sets %d not a power of two", sets)
	}
	tt, err := NewDedupTable(cfg.TargetEntries, cfg.TargetWays)
	if err != nil {
		return nil, err
	}
	tt.EnableRefcounts()
	d := &DedupBTB{
		name:      fmt.Sprintf("dedup-%d", cfg.MonitorEntries),
		sets:      sets,
		ways:      cfg.MonitorWays,
		indexBits: uint(bits.TrailingZeros(uint(sets))),
		entries:   make([]dedupEntry, cfg.MonitorEntries),
		scanTags:  newScanTags(cfg.MonitorEntries),
		repl:      NewSRRIPSlab(sets, cfg.MonitorWays, 2),
		targets:   tt,
	}
	return d, nil
}

// Name implements TargetPredictor.
func (d *DedupBTB) Name() string { return d.name }

// Lookup implements TargetPredictor.
//
//pdede:hot
func (d *DedupBTB) Lookup(pc addr.VA) Lookup {
	set, tag := addr.IndexTag(pc, d.indexBits, TagBits)
	d.memoPC, d.memoSet, d.memoTag, d.memoWay, d.memoOK = pc, set, tag, -1, true
	base := int(set) * d.ways
	for w, st := range d.scanTags[base : base+d.ways] {
		if st != tag {
			continue
		}
		d.memoWay = int32(w)
		v, ok := d.targets.Get(int(d.entries[base+w].ptr))
		if !ok {
			return Lookup{}
		}
		return Lookup{Hit: true, Target: addr.VA(v), ExtraLatency: 1}
	}
	return Lookup{}
}

// probe resolves pc's (set, tag, matched way), reusing the Lookup memo when
// Update immediately follows Lookup for the same PC (see Baseline.probe).
//
//pdede:hot
func (d *DedupBTB) probe(pc addr.VA) (set addr.SetIndex, tag addr.Tag, way int) {
	if d.memoOK && d.memoPC == pc {
		d.memoOK = false
		return d.memoSet, d.memoTag, int(d.memoWay)
	}
	d.memoOK = false
	set, tag = addr.IndexTag(pc, d.indexBits, TagBits)
	way = -1
	base := int(set) * d.ways
	for w, st := range d.scanTags[base : base+d.ways] {
		if st == tag {
			way = w
			break
		}
	}
	return set, tag, way
}

// Update implements TargetPredictor.
//
//pdede:hot
func (d *DedupBTB) Update(br isa.Branch, prior Lookup) {
	if !br.Taken || br.Kind.IsReturn() {
		return
	}
	set, tag, hit := d.probe(br.PC)
	base := int(set) * d.ways
	repl := d.repl[set]
	if hit >= 0 {
		w := hit
		e := &d.entries[base+w]
		repl.Touch(w)
		if v, ok := d.targets.Get(int(e.ptr)); ok && addr.VA(v) == br.Target {
			e.conf = e.conf.inc()
			d.targets.Touch(int(e.ptr))
			return
		}
		// Stale-pointer repair: if the branch's (unchanged) target still
		// lives in the table at another slot, the pointer went dangling when
		// its old slot was reused — re-wire without paying confidence
		// hysteresis. The content lookup reuses the allocation path's CAM.
		if ptr, found := d.targets.Find(uint64(br.Target)); found {
			if int32(ptr) != e.ptr {
				d.targets.Release(int(e.ptr))
				e.ptr = int32(ptr)
				d.targets.Acquire(ptr)
				d.targets.Touch(ptr)
				return
			}
		}
		if e.conf > 0 {
			e.conf = e.conf.dec()
			return
		}
		ptr, _ := d.targets.FindOrInsert(uint64(br.Target))
		d.targets.Release(int(e.ptr))
		e.ptr = int32(ptr)
		d.targets.Acquire(ptr)
		return
	}
	// Allocate: target table first (§4.4.2 ordering), then the monitor.
	ptr, _ := d.targets.FindOrInsert(uint64(br.Target))
	w := -1
	for i := 0; i < d.ways; i++ {
		if !d.entries[base+i].valid {
			w = i
			break
		}
	}
	if w < 0 {
		w = repl.Victim(nil)
		d.targets.Release(int(d.entries[base+w].ptr))
	}
	d.entries[base+w] = dedupEntry{valid: true, tag: tag, ptr: int32(ptr)}
	d.scanTags[base+w] = tag
	d.targets.Acquire(ptr)
	repl.Insert(w)
}

// MonitorEntryBits returns per-entry monitor storage.
func (d *DedupBTB) MonitorEntryBits() uint64 {
	return pidBits + TagBits + confBits + 2 /* SRRIP */ + d.targets.PtrBits()
}

// StorageBits implements TargetPredictor.
func (d *DedupBTB) StorageBits() uint64 {
	return uint64(d.sets*d.ways)*d.MonitorEntryBits() + d.targets.StorageBits(targetBits)
}

// Reset implements TargetPredictor.
func (d *DedupBTB) Reset() {
	d.memoOK = false
	for i := range d.entries {
		d.entries[i] = dedupEntry{}
		d.scanTags[i] = scanInvalid
	}
	for _, r := range d.repl {
		r.Reset()
	}
	d.targets.Reset()
}

// Package metrics provides the numeric aggregation and plain-text table
// rendering used by the experiment harness: means, geometric means of
// speedups, per-category grouping and aligned report tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMeanSpeedup aggregates relative gains (0.10 = +10%) multiplicatively:
// the geometric mean of (1+x), minus one. This is the standard way to
// average per-application speedups.
func GeoMeanSpeedup(gains []float64) float64 {
	if len(gains) == 0 {
		return 0
	}
	logSum := 0.0
	for _, g := range gains {
		f := 1 + g
		if f <= 0 {
			// A ≥100% slowdown cannot go through logs; clamp near zero.
			f = 1e-6
		}
		logSum += math.Log(f)
	}
	return math.Exp(logSum/float64(len(gains))) - 1
}

// Min and Max return the extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation over the sorted values.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Table renders aligned plain-text tables for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// renders with %.3f, integers with %d.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a ratio as a signed percentage ("+14.4%").
func Pct(x float64) string {
	return fmt.Sprintf("%+.1f%%", 100*x)
}

// Pct0 formats a ratio as an unsigned percentage ("54.7%").
func Pct0(x float64) string {
	return fmt.Sprintf("%.1f%%", 100*x)
}

package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean not 0")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// (1.21 * 1.0)^(1/2) - 1 = 0.1
	if g := GeoMeanSpeedup([]float64{0.21, 0}); !almost(g, math.Sqrt(1.21)-1) {
		t.Errorf("geomean = %v", g)
	}
	if GeoMeanSpeedup(nil) != 0 {
		t.Error("empty geomean not 0")
	}
	// Must not blow up on a catastrophic slowdown.
	if g := GeoMeanSpeedup([]float64{-1.5}); math.IsNaN(g) || math.IsInf(g, 0) {
		t.Errorf("geomean on -150%% = %v", g)
	}
}

// Property: geomean lies between min and max gain.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		gains := make([]float64, len(raw))
		for i, r := range raw {
			gains[i] = float64(r)/255*0.8 - 0.2 // gains in [-0.2, 0.6]
		}
		g := GeoMeanSpeedup(gains)
		return g >= Min(gains)-1e-9 && g <= Max(gains)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Min(xs) != -1 || Max(xs) != 4 {
		t.Error("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max not 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile not 0")
	}
	// Must not mutate input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 {
		t.Error("Percentile mutated its input")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("design", "ipc", "mpki")
	tb.AddRowf("baseline", 1.234, 10)
	tb.AddRowf("pdede", 1.411, uint64(5))
	tb.AddRow("short")
	out := tb.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "1.234") {
		t.Errorf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + rule + 3 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: every row has the same prefix width up to column 2.
	if !strings.Contains(lines[0], "design") {
		t.Error("missing header")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.144) != "+14.4%" {
		t.Errorf("Pct = %s", Pct(0.144))
	}
	if Pct0(0.547) != "54.7%" {
		t.Errorf("Pct0 = %s", Pct0(0.547))
	}
	if Pct(-0.05) != "-5.0%" {
		t.Errorf("Pct = %s", Pct(-0.05))
	}
}

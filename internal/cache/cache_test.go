package cache

import (
	"testing"

	"repro/internal/addr"
)

func TestBasicHitMiss(t *testing.T) {
	c, err := New(4096, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := addr.Build(1, 2, 0x100)
	if c.Access(a) {
		t.Error("cold access hit")
	}
	if !c.Access(a) {
		t.Error("second access missed")
	}
	if !c.Access(a.Add(63 - uint64(a.Offset())%64)) {
		t.Error("same-line access missed")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, g := range [][3]int{{0, 4, 64}, {4096, 4, 60}, {4096, 3, 64}, {1000, 4, 64}} {
		if _, err := New(g[0], g[1], g[2]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2-set, 64B lines: 256B cache.
	c, err := New(256, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Three lines mapping to the same set (stride = sets*64 = 128).
	a := addr.New(0)
	b := addr.New(256)
	d := addr.New(512)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a more recent than b
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Error("recently used line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("filled line absent")
	}
}

func TestContainsDoesNotAllocate(t *testing.T) {
	c, _ := New(4096, 4, 64)
	a := addr.Build(1, 2, 0)
	if c.Contains(a) {
		t.Error("empty cache contains line")
	}
	if c.Access(a) {
		t.Error("Contains allocated the line")
	}
}

func TestAccessRange(t *testing.T) {
	c, _ := New(32768, 8, 64)
	lo := addr.Build(1, 2, 0x00)
	hi := addr.Build(1, 2, 0xFF) // 4 lines
	if m := c.AccessRange(lo, hi); m != 4 {
		t.Errorf("cold range misses = %d, want 4", m)
	}
	if m := c.AccessRange(lo, hi); m != 0 {
		t.Errorf("warm range misses = %d, want 0", m)
	}
	// Single-instruction block: one line.
	if m := c.AccessRange(addr.Build(1, 3, 0x10), addr.Build(1, 3, 0x10)); m != 1 {
		t.Errorf("single access misses = %d, want 1", m)
	}
}

func TestReset(t *testing.T) {
	c, _ := New(4096, 4, 64)
	a := addr.Build(1, 2, 0)
	c.Access(a)
	c.Reset()
	if c.Contains(a) {
		t.Error("line survived reset")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// 32 KiB, 8-way, 64B lines: 512 lines. A 1024-line working set thrashes;
	// a 256-line set fits.
	c, _ := New(32768, 8, 64)
	for round := 0; round < 3; round++ {
		for i := 0; i < 256; i++ {
			c.Access(addr.New(uint64(i * 64)))
		}
	}
	hits := 0
	for i := 0; i < 256; i++ {
		if c.Contains(addr.New(uint64(i * 64))) {
			hits++
		}
	}
	if hits != 256 {
		t.Errorf("fitting working set: %d/256 resident", hits)
	}
}

// TestCloneIsDeep drives a parent and an identically-driven twin, clones
// the parent, thrashes the clone, then continues driving parent and twin
// in lockstep: every divergence between them is shared mutable state
// leaking through Clone.
func TestCloneIsDeep(t *testing.T) {
	parent, _ := New(4096, 4, 64)
	twin, _ := New(4096, 4, 64)
	for i := 0; i < 200; i++ {
		a := addr.New(uint64(i * 96))
		parent.Access(a)
		twin.Access(a)
	}
	clone := parent.Clone()
	// The clone starts bit-identical: same hits on a probe sweep.
	for i := 0; i < 200; i++ {
		a := addr.New(uint64(i * 96))
		if parent.Contains(a) != clone.Contains(a) {
			t.Fatalf("clone differs from parent immediately at line %d", i)
		}
	}
	// Thrash the clone far past capacity.
	for i := 0; i < 5000; i++ {
		clone.Access(addr.New(uint64(0x100000 + i*64)))
	}
	// Parent and twin must still agree access for access.
	for i := 0; i < 400; i++ {
		a := addr.New(uint64(i * 80))
		if got, want := parent.Access(a), twin.Access(a); got != want {
			t.Fatalf("parent diverged from twin after clone mutation at access %d", i)
		}
	}
}

// Package cache provides a generic set-associative cache model and the
// instruction-cache wrapper used by the core's decoupled frontend.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
)

// Cache is a set-associative cache with LRU replacement, tracking only
// presence (tags), which is all an instruction-fetch timing model needs.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	setShift  uint // log2(sets), hoisted out of the per-access tag split
	indexMask uint64

	tags  []uint64
	valid []bool
	stamp []uint64
	clock uint64
	// last caches each set's most recent hit (or fill) way: instruction
	// fetch revisits the same lines heavily, so most accesses resolve
	// without scanning the set.
	last []int32
}

// New builds a cache of totalBytes capacity with the given associativity
// and line size (both powers of two).
func New(totalBytes, ways, lineBytes int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry")
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", lineBytes)
	}
	lines := totalBytes / lineBytes
	if lines == 0 || lines%ways != 0 {
		return nil, fmt.Errorf("cache: %dB / %dB lines not divisible into %d ways", totalBytes, lineBytes, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: sets %d not a power of two", sets)
	}
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		indexMask: uint64(sets - 1),
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		stamp:     make([]uint64, lines),
		last:      make([]int32, sets),
	}, nil
}

// line splits an address into set and tag.
func (c *Cache) line(a addr.VA) (int, uint64) {
	l := uint64(a) >> c.lineShift
	return int(l & c.indexMask), l >> c.setShift
}

// Access touches the line holding a, allocating it on a miss. It returns
// whether the access hit.
func (c *Cache) Access(a addr.VA) bool {
	set, tag := c.line(a)
	base := set * c.ways
	c.clock++
	// Fast path: the set's most recent hit way (the common case for
	// instruction fetch, which re-touches the same lines block after block).
	if i := base + int(c.last[set]); c.valid[i] && c.tags[i] == tag {
		c.stamp[i] = c.clock
		return true
	}
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp[base+w] = c.clock
			c.last[set] = int32(w)
			return true
		}
	}
	// Miss: fill into invalid or LRU way.
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.stamp[base+w] < oldest {
			oldest = c.stamp[base+w]
			victim = base + w
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.stamp[victim] = c.clock
	c.last[set] = int32(victim - base)
	return false
}

// Clone returns a deep copy of the cache: the clone and the receiver share
// no mutable state, so each can be driven independently afterwards. The
// warm-state fan-out in internal/core clones one warmed instruction cache
// per design under test.
func (c *Cache) Clone() *Cache {
	d := *c
	d.tags = append([]uint64(nil), c.tags...)
	d.valid = append([]bool(nil), c.valid...)
	d.stamp = append([]uint64(nil), c.stamp...)
	d.last = append([]int32(nil), c.last...)
	return &d
}

// Contains reports presence without updating replacement state.
func (c *Cache) Contains(a addr.VA) bool {
	set, tag := c.line(a)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.clock = 0
}

// AccessRange touches every line overlapping [lo, hi] and returns the
// number of misses. The frontend uses it to fetch a basic block.
func (c *Cache) AccessRange(lo, hi addr.VA) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	misses := 0
	lineBytes := uint64(1) << c.lineShift
	for a := uint64(lo) &^ (lineBytes - 1); a <= uint64(hi); a += lineBytes {
		if !c.Access(addr.VA(a)) {
			misses++
		}
	}
	return misses
}

// Quickstart: simulate one frontend-bound application on the baseline BTB
// and on PDede, and print the headline comparison.
package main

import (
	"fmt"
	"log"

	pdedesim "repro"
)

func main() {
	// Pick an application from the built-in catalog (102 synthetic apps
	// calibrated to the paper's branch-population analysis).
	app, err := pdedesim.AppByName("Server-oltp-primary")
	if err != nil {
		log.Fatal(err)
	}

	// Build its dynamic branch trace once; traces are deterministic and
	// replayable, so both designs see exactly the same stream.
	opts := pdedesim.DefaultSimOptions()
	tr, err := pdedesim.BuildTrace(app, opts.TotalInstrs)
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := pdedesim.SimulateTrace(app, tr, pdedesim.Baseline(4096), opts)
	if err != nil {
		log.Fatal(err)
	}
	pdede, err := pdedesim.SimulateTrace(app, tr, pdedesim.PDedeMultiEntry(), opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %s (%s)\n\n", app.Name, app.Category)
	fmt.Printf("%-22s IPC %.3f   BTB MPKI %6.2f   frontend stalls %.1f%%\n",
		"baseline 4K (37.5KB):", baseline.IPC(), baseline.BTBMPKI(), 100*baseline.FrontendStallFrac())
	fmt.Printf("%-22s IPC %.3f   BTB MPKI %6.2f   frontend stalls %.1f%%\n\n",
		"PDede-Multi Entry:", pdede.IPC(), pdede.BTBMPKI(), 100*pdede.FrontendStallFrac())
	fmt.Printf("IPC speedup:    %+.1f%%\n", 100*pdede.Speedup(baseline))
	fmt.Printf("MPKI reduction: %.1f%%\n", 100*pdede.MPKIReduction(baseline))
}

// Custom BTB: plug your own branch-target predictor into the simulator by
// implementing the TargetPredictor interface.
//
// The toy design here is a direct-mapped, untagged BTB — the simplest
// possible organisation. Untagged entries alias freely, which makes for an
// instructive comparison against the tagged set-associative baseline at the
// same entry count.
package main

import (
	"fmt"
	"log"

	pdedesim "repro"
	"repro/internal/addr"
	"repro/internal/isa"
)

// DirectMapped is a tagless direct-mapped BTB with 2^bits entries.
type DirectMapped struct {
	bits    uint
	targets []addr.VA
	valid   []bool
}

// NewDirectMapped builds the predictor.
func NewDirectMapped(bits uint) *DirectMapped {
	n := 1 << bits
	return &DirectMapped{bits: bits, targets: make([]addr.VA, n), valid: make([]bool, n)}
}

func (d *DirectMapped) idx(pc addr.VA) int {
	return int(addr.Mix64(uint64(pc)>>1) & uint64(len(d.targets)-1))
}

// Name implements pdedesim.TargetPredictor.
func (d *DirectMapped) Name() string { return fmt.Sprintf("direct-mapped-%d", len(d.targets)) }

// Lookup implements pdedesim.TargetPredictor. Without tags, any PC mapping
// to a live slot "hits" — possibly with another branch's target.
func (d *DirectMapped) Lookup(pc addr.VA) pdedesim.Lookup {
	i := d.idx(pc)
	if !d.valid[i] {
		return pdedesim.Lookup{}
	}
	return pdedesim.Lookup{Hit: true, Target: d.targets[i]}
}

// Update implements pdedesim.TargetPredictor.
func (d *DirectMapped) Update(b isa.Branch, prior pdedesim.Lookup) {
	if !b.Taken || b.Kind.IsReturn() {
		return
	}
	i := d.idx(b.PC)
	d.valid[i] = true
	d.targets[i] = b.Target
}

// StorageBits implements pdedesim.TargetPredictor (57b target + valid).
func (d *DirectMapped) StorageBits() uint64 { return uint64(len(d.targets)) * 58 }

// Reset implements pdedesim.TargetPredictor.
func (d *DirectMapped) Reset() {
	for i := range d.valid {
		d.valid[i] = false
	}
}

func main() {
	app, err := pdedesim.AppByName("Browser-imaging")
	if err != nil {
		log.Fatal(err)
	}
	opts := pdedesim.DefaultSimOptions()
	tr, err := pdedesim.BuildTrace(app, opts.TotalInstrs)
	if err != nil {
		log.Fatal(err)
	}

	designs := []struct {
		name string
		mk   func() (pdedesim.TargetPredictor, error)
	}{
		{"direct-mapped 4K", func() (pdedesim.TargetPredictor, error) { return NewDirectMapped(12), nil }},
		{"baseline 4K", pdedesim.Baseline(4096)},
		{"pdede-me", pdedesim.PDedeMultiEntry()},
	}
	fmt.Printf("application: %s\n\n", app.Name)
	for _, d := range designs {
		res, err := pdedesim.SimulateTrace(app, tr, d.mk, opts)
		if err != nil {
			log.Fatal(err)
		}
		tp, _ := d.mk()
		fmt.Printf("%-18s %6.1f KB   IPC %.3f   BTB MPKI %6.2f\n",
			d.name, float64(tp.StorageBits())/8/1024, res.IPC(), res.BTBMPKI())
	}
	fmt.Println("\nThe untagged design aliases: compare its MPKI against the tagged baseline.")
}

// Datacenter study: run the Server category of the catalog (the paper's
// web-scale workloads) across BTB designs and report per-category means —
// a miniature of the paper's Figure 10 focused on the workloads that
// motivated the work.
package main

import (
	"fmt"
	"log"
	"sort"

	pdedesim "repro"
)

func main() {
	// Keep the example snappy: a dozen server apps, shorter windows.
	var servers []pdedesim.App
	for _, a := range pdedesim.Catalog() {
		if a.Category == pdedesim.Server {
			servers = append(servers, a)
		}
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i].Name < servers[j].Name })
	servers = servers[:12]

	opts := pdedesim.DefaultSimOptions()
	opts.TotalInstrs = 2_000_000
	opts.WarmupInstrs = 900_000

	designs := []struct {
		name string
		mk   func() (pdedesim.TargetPredictor, error)
	}{
		{"pdede", pdedesim.PDedeDefault()},
		{"pdede-mt", pdedesim.PDedeMultiTarget()},
		{"pdede-me", pdedesim.PDedeMultiEntry()},
	}

	type row struct {
		app   string
		base  float64
		gains map[string]float64
		reds  map[string]float64
	}
	var rows []row
	sums := map[string]float64{}
	for _, app := range servers {
		tr, err := pdedesim.BuildTrace(app, opts.TotalInstrs)
		if err != nil {
			log.Fatal(err)
		}
		base, err := pdedesim.SimulateTrace(app, tr, pdedesim.Baseline(4096), opts)
		if err != nil {
			log.Fatal(err)
		}
		r := row{app: app.Name, base: base.BTBMPKI(), gains: map[string]float64{}, reds: map[string]float64{}}
		for _, d := range designs {
			res, err := pdedesim.SimulateTrace(app, tr, d.mk, opts)
			if err != nil {
				log.Fatal(err)
			}
			r.gains[d.name] = res.Speedup(base)
			r.reds[d.name] = res.MPKIReduction(base)
			sums[d.name] += res.Speedup(base)
		}
		rows = append(rows, r)
	}

	fmt.Printf("%-30s %10s | %22s | %22s | %22s\n", "server application", "base MPKI",
		"pdede (ipc/mpki)", "pdede-mt (ipc/mpki)", "pdede-me (ipc/mpki)")
	for _, r := range rows {
		fmt.Printf("%-30s %10.2f | %+9.1f%% / %7.1f%% | %+9.1f%% / %7.1f%% | %+9.1f%% / %7.1f%%\n",
			r.app, r.base,
			100*r.gains["pdede"], 100*r.reds["pdede"],
			100*r.gains["pdede-mt"], 100*r.reds["pdede-mt"],
			100*r.gains["pdede-me"], 100*r.reds["pdede-me"])
	}
	fmt.Println()
	for _, d := range designs {
		fmt.Printf("mean IPC gain %-9s %+.1f%%\n", d.name+":", 100*sums[d.name]/float64(len(rows)))
	}
}

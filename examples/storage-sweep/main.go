// Storage sweep: find the smallest PDede configuration whose MPKI matches
// the 37.5KB baseline BTB on a workload — the paper's iso-MPKI storage
// saving argument (Figure 12c: PDede reaches iso-MPKI at ~49% less
// storage).
package main

import (
	"fmt"
	"log"

	pdedesim "repro"
)

func main() {
	app, err := pdedesim.AppByName("Server-webtraffic-01")
	if err != nil {
		log.Fatal(err)
	}
	opts := pdedesim.DefaultSimOptions()
	tr, err := pdedesim.BuildTrace(app, opts.TotalInstrs)
	if err != nil {
		log.Fatal(err)
	}

	base, err := pdedesim.SimulateTrace(app, tr, pdedesim.Baseline(4096), opts)
	if err != nil {
		log.Fatal(err)
	}
	baseKB := 4096.0 * 75 / 8 / 1024
	fmt.Printf("application: %s\nbaseline: %.1fKB, MPKI %.3f\n\n", app.Name, baseKB, base.BTBMPKI())

	fmt.Printf("%-28s %9s %10s %9s\n", "PDede (baseline-equivalent)", "storage", "BTB MPKI", "iso-MPKI")
	smallest := -1.0
	for _, eq := range []int{1024, 1536, 2048, 3072, 4096} {
		mk := pdedesim.PDedeScaled(eq, 2) // Multi-Entry variant
		res, err := pdedesim.SimulateTrace(app, tr, mk, opts)
		if err != nil {
			log.Fatal(err)
		}
		tp, _ := mk()
		kb := float64(tp.StorageBits()) / 8 / 1024
		iso := res.BTBMPKI() <= base.BTBMPKI()
		if iso && smallest < 0 {
			smallest = kb
		}
		fmt.Printf("%-28d %8.1fKB %10.3f %9v\n", eq, kb, res.BTBMPKI(), iso)
	}
	if smallest > 0 {
		fmt.Printf("\nsmallest iso-MPKI PDede: %.1fKB → %.0f%% storage saving vs the %.1fKB baseline\n",
			smallest, 100*(1-smallest/baseKB), baseKB)
	} else {
		fmt.Println("\nno tested configuration reached iso-MPKI; widen the sweep")
	}
}

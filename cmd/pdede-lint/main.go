// pdede-lint is the repository's custom static-analysis suite: eleven
// analyzers that enforce at compile time the contracts the runtime
// verification machinery (differential oracle, deep audits, perf gate)
// checks at run time.
//
//	determinism   no wall clock, global rand, or order-sensitive map
//	              iteration in simulation/report packages
//	hotpath       //pdede:hot functions stay free of defer, closures,
//	              append and interface boxing
//	bitwidth      shift/mask literals match the declared address
//	              component widths (57-bit VA, 12-bit offset, ...)
//	auditcontract every BTB design implements btb.Auditable and is
//	              registered for the oracle sweep
//	atomicwrite   checkpoint/report files go through atomicio
//	statepurity   Lookup paths write only //pdede:scratch fields
//	              (wrong-path safety, via flowkit's interprocedural
//	              write-set summaries)
//	addrdomain    RegionID/PageNum/PageOffset/SetIndex/Tag values never
//	              cross domains through conversions or comparisons
//	guardedby     //pdede:guarded-by(mu) fields accessed only with the
//	              mutex held on every CFG path (flowkit dataflow)
//	clonecomplete Clone() deep-copies every reference field or marks it
//	              //pdede:shared-immutable (flowkit retention summaries)
//	frozen        //pdede:frozen types are never written after their
//	              constructor returns (interprocedural closure)
//	ctxblock      blocking ops reachable from serve/experiments pool
//	              goroutines are select-guarded by ctx/done
//
// Usage:
//
//	pdede-lint [flags] [packages]          # standalone, like go vet ./...
//	go vet -vettool=$(which pdede-lint) ./...
//
// Standalone mode loads packages via `go list -export` (build-cache only,
// no network). As a vettool it speaks cmd/go's unitchecker config
// protocol. Exit status: 0 clean, 1 findings, 2 operational error.
//
// With -json, standalone findings are emitted to stdout as a JSON array of
// {file, line, col, analyzer, message} objects (empty array when clean) for
// CI annotation tooling; the exit-status contract is unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/addrdomain"
	"repro/internal/analysis/atomicwrite"
	"repro/internal/analysis/auditcontract"
	"repro/internal/analysis/bitwidth"
	"repro/internal/analysis/clonecomplete"
	"repro/internal/analysis/ctxblock"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/frozen"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/statepurity"
)

// suite is the full analyzer set, in report order.
func suite() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		bitwidth.Analyzer,
		auditcontract.Analyzer,
		atomicwrite.Analyzer,
		statepurity.Analyzer,
		addrdomain.Analyzer,
		guardedby.Analyzer,
		clonecomplete.Analyzer,
		frozen.Analyzer,
		ctxblock.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// `go vet -vettool` probes the tool's version before handing it work.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("pdede-lint version 1\n")
		return 0
	}
	// cmd/go also probes `-flags` for a JSON description of tool flags it
	// may forward. The suite takes none in vettool mode.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	// Unitchecker protocol: a single *.cfg argument (possibly after flags
	// cmd/go passes through).
	if cfg := vetConfigArg(args); cfg != "" {
		return runVettool(cfg)
	}

	fs := flag.NewFlagSet("pdede-lint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("C", "", "change to this directory before loading packages")
	asJSON := fs.Bool("json", false, "emit diagnostics to stdout as a JSON array")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pdede-lint [flags] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range suite() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}

	pkgs, err := lintkit.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}
	diags, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "pdede-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "pdede-lint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the -json wire form of one finding. Field names are part of
// the CI contract (the problem-matcher in .github/ parses them).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lintkit.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func selectAnalyzers(only string) ([]*lintkit.Analyzer, error) {
	all := suite()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lintkit.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lintkit.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			names := make([]string, len(all))
			for i, a := range all {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q; valid analyzers: %s",
				name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfigArg returns the unitchecker config path when the invocation is
// the cmd/go vettool protocol (trailing *.cfg argument).
func vetConfigArg(args []string) string {
	if len(args) == 0 {
		return ""
	}
	last := args[len(args)-1]
	if strings.HasSuffix(last, ".cfg") {
		return last
	}
	return ""
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit/linttest"
)

func TestVersionProbe(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Fatalf("-V=full exit %d, want 0", got)
	}
}

func TestListAnalyzers(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list exit %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsOperationalError(t *testing.T) {
	if got := run([]string{"-run", "nope", "./..."}); got != 2 {
		t.Fatalf("-run nope exit %d, want 2", got)
	}
}

// TestUnknownAnalyzerListsValidNames pins the error contract: a typo in
// -run must name every valid analyzer, so the user can fix the invocation
// without opening the source (and so a typo can never silently run an
// empty set).
func TestUnknownAnalyzerListsValidNames(t *testing.T) {
	_, err := selectAnalyzers("guardedbyy")
	if err == nil {
		t.Fatal("selectAnalyzers accepted an unknown name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown analyzer "guardedbyy"`) {
		t.Errorf("error does not name the bad analyzer: %q", msg)
	}
	for _, a := range suite() {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list valid analyzer %s: %q", a.Name, msg)
		}
	}
}

// TestCleanTree pins the repository's own lint status: the full suite over
// the full module must report nothing. A violation anywhere in the tree
// fails this test the same way `make lint` does.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short mode")
	}
	if got := run([]string{"-C", "../..", "./..."}); got != 0 {
		t.Fatalf("suite over the repository exit %d, want 0 (tree has lint findings)", got)
	}
}

// seedCases is one minimal violating module per analyzer: seeding any single
// violation must flip the exit status to 1.
var seedCases = []struct {
	name     string
	analyzer string
	files    map[string]string
}{
	{
		name:     "determinism",
		analyzer: "determinism",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

func FirstKey(m map[uint64]int) uint64 {
	for k := range m {
		return k
	}
	return 0
}
`,
		},
	},
	{
		name:     "hotpath",
		analyzer: "hotpath",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

func cleanup() {}

//pdede:hot
func Lookup(pc uint64) uint64 {
	defer cleanup()
	return pc
}
`,
		},
	},
	{
		// Interprocedural: the violation lives in a plain helper that only
		// the //pdede:hot root's call-graph closure makes hot.
		name:     "hotpath-interproc",
		analyzer: "hotpath",
		files: map[string]string{
			"go.mod":              "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": hotpathInterprocSeed,
		},
	},
	{
		name:     "bitwidth",
		analyzer: "bitwidth",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/addr/addr.go": `package addr

const (
	VABits     = 57
	PageShift  = 12
	OffsetBits = PageShift
)

func Bad(x uint64) uint64 { return x >> 13 }
`,
		},
	},
	{
		name:     "auditcontract",
		analyzer: "auditcontract",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

type TargetPredictor interface {
	Name() string
}

type Auditable interface{ Audit() error }

type Unaudited struct{}

func (*Unaudited) Name() string { return "u" }
`,
		},
	},
	{
		name:     "atomicwrite",
		analyzer: "atomicwrite",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/perf/perf.go": `package perf

import "os"

func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		},
	},
	{
		// Corruption injection: a real architectural-field write seeded
		// into a fixture copy of Baseline.Lookup.
		name:     "statepurity",
		analyzer: "statepurity",
		files: map[string]string{
			"go.mod":              "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": statepuritySeed,
		},
	},
	{
		name:     "addrdomain",
		analyzer: "addrdomain",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/addr/addr.go": `package addr

type (
	RegionID   uint64
	PageNum    uint64
	PageOffset uint64
	SetIndex   uint64
	Tag        uint64
)
`,
			"internal/btb/btb.go": `package btb

import "seed/internal/addr"

func Mix(r addr.RegionID) addr.PageNum {
	return addr.PageNum(r)
}
`,
		},
	},
	{
		// Corruption injection: a lock-free read seeded into a fixture
		// checkpoint.
		name:     "guardedby",
		analyzer: "guardedby",
		files: map[string]string{
			"go.mod":                             "module seed\n\ngo 1.22\n",
			"internal/experiments/checkpoint.go": guardedbySeed,
		},
	},
	{
		// Corruption injection: the classic shallow-clone bug — copying the
		// struct copies the slice header, not the storage.
		name:     "clonecomplete",
		analyzer: "clonecomplete",
		files: map[string]string{
			"go.mod":              "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": clonecompleteSeed,
		},
	},
	{
		// Corruption injection: an exported mutator writing a //pdede:frozen
		// type after construction.
		name:     "frozen",
		analyzer: "frozen",
		files: map[string]string{
			"go.mod":                "module seed\n\ngo 1.22\n",
			"internal/core/core.go": frozenSeed,
		},
	},
	{
		// Corruption injection: a pool goroutine blocking on an unguarded
		// channel send.
		name:     "ctxblock",
		analyzer: "ctxblock",
		files: map[string]string{
			"go.mod":                  "module seed\n\ngo 1.22\n",
			"internal/serve/serve.go": ctxblockSeed,
		},
	},
}

// hotpathInterprocSeed hides the defer two calls below the //pdede:hot
// root: only the interprocedural closure finds it.
const hotpathInterprocSeed = `package btb

func cleanup() {}

func slowProbe(pc uint64) uint64 {
	defer cleanup()
	return pc
}

func probe(pc uint64) uint64 {
	return slowProbe(pc)
}

//pdede:hot
func Lookup(pc uint64) uint64 {
	return probe(pc)
}
`

// statepuritySeed is a fixture copy of Baseline.Lookup with the
// architectural write left in.
const statepuritySeed = `package btb

type entry struct {
	tag    uint64
	target uint64
	valid  bool
}

type Baseline struct {
	entries []entry

	//pdede:scratch
	memoOK bool
}

func (b *Baseline) Lookup(pc uint64) (uint64, bool) {
	set := pc % uint64(len(b.entries))
	b.memoOK = true
	e := &b.entries[set]
	if e.valid && e.tag == pc {
		e.target = pc + 4 // the corruption: a lookup rewriting an entry
		return e.target, true
	}
	return 0, false
}
`

// guardedbySeed is a fixture checkpoint whose guarded map is read without
// the mutex.
const guardedbySeed = `package experiments

import "sync"

type Checkpoint struct {
	mu sync.Mutex
	//pdede:guarded-by(mu)
	done map[string]int
}

func (c *Checkpoint) Record(app string) {
	c.mu.Lock()
	c.done[app]++
	c.mu.Unlock()
}

func (c *Checkpoint) Peek(app string) int {
	return c.done[app] // the corruption: no lock on any path
}
`

// clonecompleteSeed clones the struct but leaves the entry slice aliased to
// the receiver.
const clonecompleteSeed = `package btb

type Cache struct {
	lines []uint64
	ways  int
}

func (c *Cache) Clone() *Cache {
	d := *c
	return &d
}
`

// frozenSeed mutates a frozen warm-state record through an exported entry
// point, i.e. from arbitrary post-construction contexts.
const frozenSeed = `package core

//pdede:frozen
type Warm struct {
	recs []int
}

func NewWarm(n int) *Warm {
	w := &Warm{recs: make([]int, 0, n)}
	return w
}

func Taint(w *Warm) {
	w.recs = append(w.recs, 1)
}
`

// ctxblockSeed spawns a pool goroutine that can block forever on a send no
// select guards.
const ctxblockSeed = `package serve

type Pool struct {
	jobs chan int
}

func (p *Pool) Start() {
	go func() {
		p.jobs <- 1
	}()
}
`

// TestSeededViolations checks, per analyzer, that a single seeded violation
// makes the standalone tool exit 1.
func TestSeededViolations(t *testing.T) {
	for _, tc := range seedCases {
		t.Run(tc.name, func(t *testing.T) {
			root := linttest.WriteModule(t, tc.files)
			if got := run([]string{"-C", root, "-run", tc.analyzer, "./..."}); got != 1 {
				t.Fatalf("seeded %s violation: exit %d, want 1", tc.name, got)
			}
			// The clean remainder of the suite still passes on this module.
			if got := run([]string{"-C", root, "./..."}); got != 1 {
				t.Fatalf("full suite on seeded module: exit %d, want 1", got)
			}
		})
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what f wrote.
func captureStdout(t *testing.T, f func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJSONOutput pins the -json wire format CI's problem matcher consumes:
// an array of {file, line, col, analyzer, message}, empty when clean, with
// the exit-status contract unchanged.
func TestJSONOutput(t *testing.T) {
	root := linttest.WriteModule(t, map[string]string{
		"go.mod":              "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go": clonecompleteSeed,
	})
	var exit int
	out := captureStdout(t, func() {
		exit = run([]string{"-C", root, "-json", "./..."})
	})
	if exit != 1 {
		t.Fatalf("-json seeded run exit %d, want 1", exit)
	}
	var diags []jsonDiag
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json output empty on a seeded violation")
	}
	d := diags[0]
	if d.Analyzer != "clonecomplete" || d.File == "" || d.Line == 0 ||
		!strings.Contains(d.Message, "aliased") {
		t.Fatalf("malformed diagnostic: %+v", d)
	}

	clean := linttest.WriteModule(t, map[string]string{
		"go.mod":              "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go": "package btb\n\nfunc ID(x uint64) uint64 { return x }\n",
	})
	out = captureStdout(t, func() {
		exit = run([]string{"-C", clean, "-json", "./..."})
	})
	if exit != 0 {
		t.Fatalf("-json clean run exit %d, want 0", exit)
	}
	if err := json.Unmarshal(out, &diags); err != nil || len(diags) != 0 {
		t.Fatalf("clean -json run must emit an empty array, got %q (err %v)", out, err)
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	root := linttest.WriteModule(t, map[string]string{
		"go.mod": "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go": `package btb

func Sum(m map[uint64]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`,
	})
	if got := run([]string{"-C", root, "./..."}); got != 0 {
		t.Fatalf("clean module exit %d, want 0", got)
	}
}

// TestVettoolProtocol drives the built binary through `go vet -vettool`,
// the unitchecker path: a seeded violation must fail the vet run with the
// diagnostic on stderr, and a clean module must pass.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("vettool build skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pdede-lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pdede-lint: %v\n%s", err, out)
	}

	// One seeded module per analyzer family: the syntactic suite, the
	// call-graph dataflow pass (statepurity), and the CFG lock-set pass
	// (guardedby, whose fixture also exercises export-data loading for the
	// sync import).
	dirtyRuns := []struct {
		name    string
		files   map[string]string
		message string
	}{
		{"determinism", seedCases[0].files, "nondeterministic map iteration"},
		{"hotpath-interproc", map[string]string{
			"go.mod":              "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": hotpathInterprocSeed,
		}, "on the //pdede:hot path via Lookup"},
		{"statepurity", map[string]string{
			"go.mod":              "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": statepuritySeed,
		}, "writes architectural state"},
		{"guardedby", map[string]string{
			"go.mod":                             "module seed\n\ngo 1.22\n",
			"internal/experiments/checkpoint.go": guardedbySeed,
		}, "guarded by c.mu"},
		{"frozen", map[string]string{
			"go.mod":                "module seed\n\ngo 1.22\n",
			"internal/core/core.go": frozenSeed,
		}, "outside construction"},
	}
	var stderr bytes.Buffer
	for _, dr := range dirtyRuns {
		dirty := linttest.WriteModule(t, dr.files)
		stderr.Reset()
		vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
		vet.Dir = dirty
		vet.Stderr = &stderr
		if err := vet.Run(); err == nil {
			t.Fatalf("go vet -vettool passed on a seeded %s violation\nstderr: %s", dr.name, stderr.String())
		}
		if !strings.Contains(stderr.String(), dr.message) {
			t.Fatalf("vet stderr missing the %s diagnostic:\n%s", dr.name, stderr.String())
		}
	}

	clean := linttest.WriteModule(t, map[string]string{
		"go.mod":                "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go":   "package btb\n\nfunc ID(x uint64) uint64 { return x }\n",
		"internal/core/core.go": "package core\n\nfunc Twice(x int) int { return 2 * x }\n",
	})
	stderr.Reset()
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = clean
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, stderr.String())
	}
	_ = os.Environ // keep os import honest if assertions above change
}

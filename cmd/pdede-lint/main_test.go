package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit/linttest"
)

func TestVersionProbe(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Fatalf("-V=full exit %d, want 0", got)
	}
}

func TestListAnalyzers(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("-list exit %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsOperationalError(t *testing.T) {
	if got := run([]string{"-run", "nope", "./..."}); got != 2 {
		t.Fatalf("-run nope exit %d, want 2", got)
	}
}

// TestCleanTree pins the repository's own lint status: the full suite over
// the full module must report nothing. A violation anywhere in the tree
// fails this test the same way `make lint` does.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short mode")
	}
	if got := run([]string{"-C", "../..", "./..."}); got != 0 {
		t.Fatalf("suite over the repository exit %d, want 0 (tree has lint findings)", got)
	}
}

// seedCases is one minimal violating module per analyzer: seeding any single
// violation must flip the exit status to 1.
var seedCases = []struct {
	name     string
	analyzer string
	files    map[string]string
}{
	{
		name:     "determinism",
		analyzer: "determinism",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

func FirstKey(m map[uint64]int) uint64 {
	for k := range m {
		return k
	}
	return 0
}
`,
		},
	},
	{
		name:     "hotpath",
		analyzer: "hotpath",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

func cleanup() {}

//pdede:hot
func Lookup(pc uint64) uint64 {
	defer cleanup()
	return pc
}
`,
		},
	},
	{
		name:     "bitwidth",
		analyzer: "bitwidth",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/addr/addr.go": `package addr

const (
	VABits     = 57
	PageShift  = 12
	OffsetBits = PageShift
)

func Bad(x uint64) uint64 { return x >> 13 }
`,
		},
	},
	{
		name:     "auditcontract",
		analyzer: "auditcontract",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/btb/btb.go": `package btb

type TargetPredictor interface {
	Name() string
}

type Auditable interface{ Audit() error }

type Unaudited struct{}

func (*Unaudited) Name() string { return "u" }
`,
		},
	},
	{
		name:     "atomicwrite",
		analyzer: "atomicwrite",
		files: map[string]string{
			"go.mod": "module seed\n\ngo 1.22\n",
			"internal/perf/perf.go": `package perf

import "os"

func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		},
	},
}

// TestSeededViolations checks, per analyzer, that a single seeded violation
// makes the standalone tool exit 1.
func TestSeededViolations(t *testing.T) {
	for _, tc := range seedCases {
		t.Run(tc.name, func(t *testing.T) {
			root := linttest.WriteModule(t, tc.files)
			if got := run([]string{"-C", root, "-run", tc.analyzer, "./..."}); got != 1 {
				t.Fatalf("seeded %s violation: exit %d, want 1", tc.name, got)
			}
			// The clean remainder of the suite still passes on this module.
			if got := run([]string{"-C", root, "./..."}); got != 1 {
				t.Fatalf("full suite on seeded module: exit %d, want 1", got)
			}
		})
	}
}

func TestCleanModuleExitsZero(t *testing.T) {
	root := linttest.WriteModule(t, map[string]string{
		"go.mod": "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go": `package btb

func Sum(m map[uint64]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`,
	})
	if got := run([]string{"-C", root, "./..."}); got != 0 {
		t.Fatalf("clean module exit %d, want 0", got)
	}
}

// TestVettoolProtocol drives the built binary through `go vet -vettool`,
// the unitchecker path: a seeded violation must fail the vet run with the
// diagnostic on stderr, and a clean module must pass.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("vettool build skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "pdede-lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pdede-lint: %v\n%s", err, out)
	}

	dirty := linttest.WriteModule(t, seedCases[0].files)
	var stderr bytes.Buffer
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = dirty
	vet.Stderr = &stderr
	if err := vet.Run(); err == nil {
		t.Fatalf("go vet -vettool passed on a seeded violation\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "nondeterministic map iteration") {
		t.Fatalf("vet stderr missing the diagnostic:\n%s", stderr.String())
	}

	clean := linttest.WriteModule(t, map[string]string{
		"go.mod":                "module seed\n\ngo 1.22\n",
		"internal/btb/btb.go":   "package btb\n\nfunc ID(x uint64) uint64 { return x }\n",
		"internal/core/core.go": "package core\n\nfunc Twice(x int) int { return 2 * x }\n",
	})
	stderr.Reset()
	vet = exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = clean
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, stderr.String())
	}
	_ = os.Environ // keep os import honest if assertions above change
}

package main

import (
	"repro/internal/analysis/lintkit"
)

// lintTypecheck builds a lintkit.Package from a vet config.
func lintTypecheck(cfg *vetConfig) (*lintkit.Package, error) {
	return lintkit.TypecheckFiles(cfg.ImportPath, cfg.GoVersion, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
}

// lintRun applies the full suite to one package.
func lintRun(pkg *lintkit.Package) ([]lintkit.Diagnostic, error) {
	return lintkit.Run([]*lintkit.Package{pkg}, suite())
}

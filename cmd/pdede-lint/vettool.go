package main

// The `go vet -vettool` side of pdede-lint: cmd/go invokes the tool once
// per package with a JSON config describing the files to analyze and where
// every dependency's export data lives, mirroring
// golang.org/x/tools/go/analysis/unitchecker — reimplemented here on the
// standard library because the repository carries no external deps.
//
// Protocol (cmd/go/internal/work + unitchecker):
//
//  1. `pdede-lint -V=full` prints a version line used for build caching
//     (handled in main).
//  2. For each package, cmd/go runs `pdede-lint <file>.cfg`. The config
//     carries GoFiles, ImportMap and PackageFile (import path → export
//     data). The tool must write a "facts" output file (VetxOutput) —
//     empty for this suite, which uses no cross-package facts — and, for
//     packages where VetxOnly is false, report diagnostics on stderr with
//     a non-zero exit when any were found.

import (
	"encoding/json"
	"fmt"
	"os"
)

// vetConfig mirrors the fields of cmd/go's vet config this tool consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pdede-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite computes no cross-package facts, but cmd/go requires the
	// output file to exist before it will cache and proceed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pdede-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return 0 // only gc export data is readable here
	}

	pkg, err := lintTypecheck(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}
	diags, err := lintRun(pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdede-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2 // cmd/go's convention for "diagnostics reported"
	}
	return 0
}

package main

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// These tests pin the documentation to the registered analyzer set: adding,
// renaming, or removing an analyzer without updating DESIGN.md §6.2 and the
// README "Static analysis" section fails the build.

func suiteNames() []string {
	var names []string
	for _, a := range suite() {
		names = append(names, a.Name)
	}
	return names
}

// section returns the lines of doc between the heading line containing
// marker and the next heading of the same or higher level.
func section(t *testing.T, path, marker string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	var level string
	for i, l := range lines {
		if start == -1 {
			if strings.HasPrefix(l, "#") && strings.Contains(l, marker) {
				start = i + 1
				level = l[:strings.IndexByte(l, ' ')]
			}
			continue
		}
		if strings.HasPrefix(l, "#") {
			h := l[:strings.IndexByte(l+" ", ' ')]
			if len(h) <= len(level) {
				return lines[start:i]
			}
		}
	}
	if start == -1 {
		t.Fatalf("%s: no heading contains %q", path, marker)
	}
	return lines[start:]
}

// TestDesignTableMatchesSuite asserts the §6.2 analyzer table lists exactly
// the registered analyzers, in registration order.
func TestDesignTableMatchesSuite(t *testing.T) {
	row := regexp.MustCompile("^\\| `([a-z]+)` \\|")
	var documented []string
	for _, l := range section(t, "../../DESIGN.md", "6.2 Statically enforced invariants") {
		if m := row.FindStringSubmatch(l); m != nil {
			documented = append(documented, m[1])
		}
	}
	want := suiteNames()
	if strings.Join(documented, ",") != strings.Join(want, ",") {
		t.Errorf("DESIGN.md §6.2 analyzer table is out of sync with suite():\n  documented: %v\n  registered: %v",
			documented, want)
	}
}

// TestReadmeListMatchesSuite asserts the README "Static analysis" section
// bolds exactly the registered analyzer names (order-insensitive: the
// README groups by analysis style, not registration order).
func TestReadmeListMatchesSuite(t *testing.T) {
	bold := regexp.MustCompile(`\*\*([a-z]+)\*\*`)
	seen := map[string]bool{}
	for _, l := range section(t, "../../README.md", "Static analysis") {
		for _, m := range bold.FindAllStringSubmatch(l, -1) {
			seen[m[1]] = true
		}
	}
	var documented []string
	for name := range seen {
		documented = append(documented, name)
	}
	sort.Strings(documented)
	want := suiteNames()
	sort.Strings(want)
	if strings.Join(documented, ",") != strings.Join(want, ",") {
		t.Errorf("README \"Static analysis\" section is out of sync with suite():\n  documented: %v\n  registered: %v",
			documented, want)
	}
}

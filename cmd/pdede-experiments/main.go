// Command pdede-experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	pdede-experiments -list                  # show all experiment ids
//	pdede-experiments -run fig10             # one experiment, full suite
//	pdede-experiments -run all -apps 16      # everything on a sampled suite
//	pdede-experiments -run fig12b -o out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	pdedesim "repro"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment id, comma-separated list, or 'all'")
		list   = flag.Bool("list", false, "list experiments and exit")
		apps   = flag.Int("apps", 0, "number of applications (0 = all 102)")
		instrs = flag.Uint64("instrs", 3_500_000, "instructions per app")
		warmup = flag.Uint64("warmup", 1_500_000, "warmup instructions")
		out    = flag.String("o", "", "also write the report to this file")
		dump   = flag.String("dump-suite", "", "run the Figure 10 designs over the suite and write per-app JSON records to this file")
	)
	flag.Parse()

	if *dump != "" {
		opts := pdedesim.SuiteOptions{Apps: *apps, TotalInstrs: *instrs, WarmupInstrs: *warmup}
		if err := pdedesim.DumpSuiteJSON(opts, *dump); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *dump)
		return
	}

	if *list || *run == "" {
		fmt.Println("paper artifacts:")
		for _, e := range pdedesim.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("extensions:")
		for _, e := range pdedesim.ExtensionExperiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun with: pdede-experiments -run <id>|all|ext")
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	switch *run {
	case "all":
		for _, e := range pdedesim.Experiments() {
			ids = append(ids, e.ID)
		}
	case "ext":
		for _, e := range pdedesim.ExtensionExperiments() {
			ids = append(ids, e.ID)
		}
	default:
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	opts := pdedesim.SuiteOptions{Apps: *apps, TotalInstrs: *instrs, WarmupInstrs: *warmup}
	for _, id := range ids {
		start := time.Now()
		if err := pdedesim.RunExperiment(id, opts, w); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Fprintf(w, "\n[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdede-experiments:", err)
	os.Exit(1)
}

// Command pdede-experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	pdede-experiments -list                  # show all experiment ids
//	pdede-experiments -run fig10             # one experiment, full suite
//	pdede-experiments -run all -apps 16      # everything on a sampled suite
//	pdede-experiments -run fig12b -o out.txt
//
// Resilience (long sweeps):
//
//	pdede-experiments -run fig10 -keep-going -retries 2 -timeout 5m \
//	    -checkpoint fig10.ckpt
//
// Sweeps run on a worker pool: -workers (default: the CPU count) bounds
// concurrent trace builds, shared warmup passes and (app, design)
// simulation cells. Results are bit-identical for every worker count, and
// the per-app warmup prefix is simulated once and cloned into every
// compatible design (disable with -cold-start to cross-check).
//
// -keep-going records per-app failures (reported on stderr) instead of
// aborting the sweep; -timeout bounds each app's wall clock; -retries
// re-attempts transient per-app failures with capped exponential backoff;
// -checkpoint persists completed (app, design) results after every app so
// an interrupted or partially-failed run resumes where it left off.
// SIGINT/SIGTERM cancel the run context: in-flight apps stop at the next
// loop check and everything already completed is in the checkpoint.
// Failures exit non-zero even when the report was written.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	pdedesim "repro"
)

func main() {
	// All the work happens in run so its deferred cleanups (signal stop,
	// report-file close) execute before the process exits; os.Exit here
	// would otherwise skip them.
	os.Exit(run())
}

func run() int {
	var (
		run     = flag.String("run", "", "experiment id, comma-separated list, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		apps    = flag.Int("apps", 0, "number of applications (0 = all 102)")
		instrs  = flag.Uint64("instrs", 3_500_000, "instructions per app")
		warmup  = flag.Uint64("warmup", 1_500_000, "warmup instructions")
		out     = flag.String("o", "", "also write the report to this file")
		dump    = flag.String("dump-suite", "", "run the Figure 10 designs over the suite and write per-app JSON records to this file")
		ckpt    = flag.String("checkpoint", "", "persist completed (app, design) results to this file and resume from it")
		timeout = flag.Duration("timeout", 0, "per-app wall-clock budget across designs and retries (0 = none)")
		retries = flag.Int("retries", 0, "extra attempts per app after a transient failure")
		backoff = flag.Duration("retry-backoff", 100*time.Millisecond, "base retry delay (doubles per attempt, capped, jittered)")
		keep    = flag.Bool("keep-going", false, "record per-app failures and keep sweeping instead of aborting on the first")
		check   = flag.Bool("selfcheck", false, "deep-audit every design's internal invariants every few thousand records (slower; fails on the first violation)")
		workers = flag.Int("workers", runtime.NumCPU(), "worker pool size for trace builds, warmup passes and (app, design) simulation cells; results are bit-identical for every value")
		cold    = flag.Bool("cold-start", false, "disable the shared per-app warmup pass; every cell re-simulates its warmup from cold (slower, bit-identical)")
		verbose = flag.Bool("v", false, "log per-app progress to stderr")

		diffCheck = flag.Bool("check", false, "run the differential oracle over an ingested trace (-trace) for every diff-roster design")
		traceIn   = flag.String("trace", "", "trace file for -check (pdt, pdtz, champsim, perf; optionally .gz)")
		traceFrom = flag.String("from", "auto", "trace container format for -trace: auto, pdt, pdtz, champsim, perf")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := pdedesim.SuiteOptions{
		Apps:         *apps,
		TotalInstrs:  *instrs,
		WarmupInstrs: *warmup,
		Workers:      *workers,
		ColdStart:    *cold,

		AppTimeout:     *timeout,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		KeepGoing:      *keep,
		CheckpointPath: *ckpt,
	}
	if *check {
		opts.SelfCheckEvery = 4096
	}
	if *verbose || *keep || *ckpt != "" {
		opts.Log = os.Stderr
	}

	if *diffCheck {
		return runTraceCheck(ctx, *traceIn, *traceFrom)
	}

	if *dump != "" {
		if err := pdedesim.DumpSuiteJSONContext(ctx, opts, *dump); err != nil {
			if interrupted(ctx) {
				err = fmt.Errorf("interrupted (completed apps are in the checkpoint): %w", err)
			}
			return fail(err)
		}
		fmt.Println("wrote", *dump)
		return 0
	}

	if *list || *run == "" {
		fmt.Println("paper artifacts:")
		for _, e := range pdedesim.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("extensions:")
		for _, e := range pdedesim.ExtensionExperiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun with: pdede-experiments -run <id>|all|ext")
		}
		return 0
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		//pdede:raw-write-ok -out tees stdout as it streams; no reader consumes it mid-run
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		outFile = f
		defer f.Close() // backstop for panics; the normal path closes below
		w = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	switch *run {
	case "all":
		for _, e := range pdedesim.Experiments() {
			ids = append(ids, e.ID)
		}
	case "ext":
		for _, e := range pdedesim.ExtensionExperiments() {
			ids = append(ids, e.ID)
		}
	default:
		for _, id := range strings.Split(*run, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	exit := 0
	for _, id := range ids {
		start := time.Now()
		err := pdedesim.RunExperimentContext(ctx, id, opts, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdede-experiments: %s: %v\n", id, err)
			exit = 1
			if interrupted(ctx) {
				fmt.Fprintln(os.Stderr, "pdede-experiments: interrupted; completed apps are in the checkpoint")
				break
			}
			if !*keep {
				break
			}
			continue // -keep-going: partial report written, sweep on
		}
		fmt.Fprintf(w, "\n[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pdede-experiments: close %s: %v\n", *out, err)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// interrupted reports whether the signal context ended the run.
func interrupted(ctx context.Context) bool { return ctx.Err() != nil }

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "pdede-experiments:", err)
	return 1
}

package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	pdedesim "repro"
	"repro/internal/trace/ingest"
)

// runTraceCheck ingests a trace file and drives every diff-roster design
// against its unbounded reference oracle over it. This is the conformance
// gate for real-trace ingestion: a freshly converted ChampSim or perf trace
// must flow through every design with zero fatal divergences, exactly like
// a synthetic trace.
func runTraceCheck(ctx context.Context, path, from string) int {
	if path == "" {
		return fail(fmt.Errorf("-check needs -trace <file> (pdt, pdtz, champsim or perf; optionally .gz)"))
	}
	format, err := ingest.ParseFormat(from)
	if err != nil {
		return fail(err)
	}
	o, err := ingest.Open(path, format)
	if err != nil {
		return fail(err)
	}
	defer o.Close()

	fmt.Printf("differential check: trace %s (%s, from %s)\n\n", o.Name(), o.Format, path)
	failed := false
	for _, name := range pdedesim.DiffDesignNames() {
		rep, err := pdedesim.CheckDesignOnTrace(ctx, name, o, pdedesim.DiffOptions{})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return fail(errors.New("interrupted"))
			}
			return fail(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("%-12s %s\n", name, rep.Summary())
		if err := rep.Err(); err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "pdede-experiments: %v\n", err)
		}
	}
	if failed {
		return 1
	}
	fmt.Println("\nall designs clean: every divergence classified as a legal capacity/aliasing effect")
	return 0
}

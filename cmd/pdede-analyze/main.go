// Command pdede-analyze reproduces the paper's §3 analysis (Figures 3–8)
// over the application suite.
//
// Usage:
//
//	pdede-analyze                 # full 102-app suite
//	pdede-analyze -apps 16        # sampled subset
//	pdede-analyze -figs fig7,fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pdedesim "repro"
)

func main() {
	var (
		apps   = flag.Int("apps", 0, "number of applications (0 = all 102)")
		instrs = flag.Uint64("instrs", 3_500_000, "instructions per app")
		figs   = flag.String("figs", "fig3,fig4,fig5,fig6,fig7,fig8", "figures to reproduce")
	)
	flag.Parse()

	opts := pdedesim.SuiteOptions{Apps: *apps, TotalInstrs: *instrs}
	for _, id := range strings.Split(*figs, ",") {
		id = strings.TrimSpace(id)
		if err := pdedesim.RunExperiment(id, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pdede-analyze:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

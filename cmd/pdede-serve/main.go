// Command pdede-serve runs the multi-tenant BTB simulation service: an
// HTTP daemon that accepts streamed branch-trace batches from many
// concurrent clients and returns predictions plus rolling MPKI/IPC.
//
// Usage:
//
//	pdede-serve -addr :8080 -design pdede-multi-entry -checkpoint-dir /var/lib/pdede
//	pdede-serve -list-designs
//
// The service is engineered for failure first: bounded queues with
// explicit backpressure (429 + Retry-After), per-tenant panic isolation
// with quarantine, idle-tenant shedding under a resident cap, and a
// graceful SIGTERM drain that checkpoints every tenant atomically so a
// restart resumes bit-identically. See internal/serve for the protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		design      = flag.String("design", "pdede-multi-entry", "BTB design to serve (see -list-designs)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for tenant checkpoints (enables drain/restart resume)")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = default)")
		queueDepth  = flag.Int("queue-depth", 0, "per-worker queue depth (0 = default)")
		pending     = flag.Int("tenant-pending", 0, "max queued batches per tenant before 429 (0 = default)")
		maxBatch    = flag.Int("max-batch-records", 0, "max records per batch before 413 (0 = default)")
		maxResident = flag.Int("max-resident-tenants", 0, "resident-tenant cap; idle tenants shed to checkpoints (0 = unbounded, requires -checkpoint-dir)")
		quarantine  = flag.Int("quarantine-after", 0, "crashes before a tenant is quarantined (0 = default)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline (0 = default 30s)")
		retryAfter  = flag.Duration("retry-after", 0, "Retry-After hint on backpressure (0 = default 1s)")
		warmup      = flag.Uint64("warmup", 0, "warmup instructions per tenant (unmeasured)")
		listDesigns = flag.Bool("list-designs", false, "list servable designs and exit")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for inflight requests on shutdown")
	)
	flag.Parse()

	if *listDesigns {
		for _, d := range experiments.DiffDesigns() {
			fmt.Println(d.Name)
		}
		return
	}
	d, ok := experiments.DesignByName(*design)
	if !ok {
		fmt.Fprintf(os.Stderr, "pdede-serve: unknown design %q (try -list-designs)\n", *design)
		os.Exit(2)
	}

	srv, err := serve.New(serve.Config{
		Design:             d,
		WarmupInstrs:       *warmup,
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		TenantPending:      *pending,
		MaxBatchRecords:    *maxBatch,
		MaxResidentTenants: *maxResident,
		CheckpointDir:      *ckptDir,
		QuarantineAfter:    *quarantine,
		RequestTimeout:     *reqTimeout,
		RetryAfter:         *retryAfter,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdede-serve: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// SIGTERM/SIGINT trigger the graceful drain: stop accepting, let
	// inflight requests finish, checkpoint every tenant, then exit. A
	// second signal aborts immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop()
		fmt.Fprintln(os.Stderr, "pdede-serve: draining (signal received)")
		srv.BeginDrain()
		shCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			fmt.Fprintf(os.Stderr, "pdede-serve: shutdown: %v\n", err)
		}
		// Close waits for inflight batches, then checkpoints every tenant.
		done <- srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "pdede-serve: design %s (config %s) listening on %s\n",
		d.Name, srv.ConfigDigest(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pdede-serve: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "pdede-serve: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pdede-serve: drained cleanly")
}

// Command pdede-trace generates, inspects and exports synthetic branch
// traces.
//
// Usage:
//
//	pdede-trace -app Browser-wasm-runtime -stats
//	pdede-trace -app Server-oltp-primary -o oltp.pdt     # write binary trace
//	pdede-trace -i oltp.pdt -stats                       # read it back
//	pdede-trace -app Browser-imaging -dump 20            # show first records
package main

import (
	"flag"
	"fmt"
	"os"

	pdedesim "repro"
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "", "catalog application to synthesize")
		instrs  = flag.Uint64("instrs", 3_500_000, "trace length in instructions")
		out     = flag.String("o", "", "write binary trace to file")
		in      = flag.String("i", "", "read binary trace from file instead of synthesizing")
		stats   = flag.Bool("stats", false, "print §3 characterization")
		reuse   = flag.Bool("reuse", false, "print the taken-PC reuse-distance profile")
		dump    = flag.Int("dump", 0, "print the first N records")
	)
	flag.Parse()

	var (
		tr  *trace.Memory
		err error
	)
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dec, err := trace.NewDecoder(f)
		if err != nil {
			fatal(err)
		}
		tr, err = trace.Collect(dec.Name(), dec)
		if err != nil {
			fatal(err)
		}
	case *appName != "":
		app, err := pdedesim.AppByName(*appName)
		if err != nil {
			fatal(err)
		}
		tr, err = pdedesim.BuildTrace(app, *instrs)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -app or -i (see -h)"))
	}

	fmt.Printf("trace %s: %d records, %d instructions\n", tr.TraceName, len(tr.Records), tr.Instructions())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr.TraceName, tr.Open()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%.1f MB, %.2f bytes/record)\n",
			*out, float64(st.Size())/1e6, float64(st.Size())/float64(len(tr.Records)))
	}

	if *dump > 0 {
		n := *dump
		if n > len(tr.Records) {
			n = len(tr.Records)
		}
		for i := 0; i < n; i++ {
			b := tr.Records[i]
			fmt.Printf("%6d %-14s pc=%v -> %v taken=%v block=%d\n",
				i, b.Kind, b.PC, b.Target, b.Taken, b.BlockLen)
		}
	}

	if *stats {
		c, err := analysis.Characterize(tr.Open())
		if err != nil {
			fatal(err)
		}
		tg, rg, pg, of := c.UniqueShare()
		fmt.Printf(`
dynamic branches      %d (taken %.1f%%)
static branch PCs     %d (taken %d)
class mix (taken)     cond %.1f%%  uncond %.1f%%  indirect %.1f%%  return %.1f%%
unique targets        %d (%.1f%% of taken PCs)
unique regions        %d (%.3f%%)
unique pages          %d (%.2f%%)
unique offsets        %d (%.1f%%)
targets per page      %.1f
targets per region    %.0f
same-page (dynamic)   %.1f%%
`,
			c.DynBranches, 100*c.DynTakenRate(),
			c.StaticPCs, c.StaticTakenPCs,
			100*c.ClassShare(isa.ClassCondDirect), 100*c.ClassShare(isa.ClassUncondDirect),
			100*c.ClassShare(isa.ClassIndirect), 100*c.ClassShare(isa.ClassReturn),
			c.UniqueTargets, 100*tg,
			c.UniqueRegions, 100*rg,
			c.UniquePages, 100*pg,
			c.UniqueOffsets, 100*of,
			c.TargetsPerPage(), c.TargetsPerRegion(),
			100*c.DynSamePageRate())
	}
	if *reuse {
		u, err := analysis.ReuseProfile(tr.Open())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntaken-PC working set: %d\n", u.WorkingSet())
		fmt.Printf("stack distance P50/P90/P99: %d / %d / %d\n",
			u.Percentile(50), u.Percentile(90), u.Percentile(99))
		for _, c := range []int{1024, 2048, 4096, 8192, 16384} {
			fmt.Printf("LRU miss rate @%5d entries: %.1f%%\n", c, 100*u.MissRateAt(c))
		}
	}
	_ = err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdede-trace:", err)
	os.Exit(1)
}

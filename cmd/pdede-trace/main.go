// Command pdede-trace generates, inspects, converts and exports branch
// traces — synthetic or ingested from real-machine capture formats.
//
// Usage:
//
//	pdede-trace -app Browser-wasm-runtime -stats
//	pdede-trace -app Server-oltp-primary -o oltp.pdtz    # write v2 trace
//	pdede-trace -i oltp.pdtz -stats                      # read it back
//	pdede-trace -app Browser-imaging -dump 20            # show first records
//
// Real-trace ingestion (ChampSim binary, perf script LBR text, and the
// native .pdt/.pdtz codecs, each optionally gzipped; format is sniffed from
// content, -from pins it):
//
//	pdede-trace -i leela.champsimtrace.gz -stats
//	pdede-trace -i lbr.txt -from perf -o lbr.pdtz        # convert
//	pdede-trace -i out.pdt -convert pdtz -o out.pdtz     # transcode v1 -> v2
//	pdede-trace -i leela.champsimtrace.gz -census        # vs synthetic suite
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pdedesim "repro"
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/trace/ingest"
)

func main() {
	var (
		appName = flag.String("app", "", "catalog application to synthesize")
		instrs  = flag.Uint64("instrs", 3_500_000, "trace length in instructions")
		out     = flag.String("o", "", "write binary trace to file (.pdtz extension selects the v2 codec)")
		in      = flag.String("i", "", "read a trace file instead of synthesizing (pdt, pdtz, champsim, perf; optionally .gz)")
		from    = flag.String("from", "auto", "input container format: auto, pdt, pdtz, champsim, perf")
		convert = flag.String("convert", "", "output codec for -o: pdt or pdtz (default: by -o extension)")
		stats   = flag.Bool("stats", false, "print §3 characterization")
		census  = flag.Bool("census", false, "print the §3 census next to the synthetic suite's range")
		capps   = flag.Int("census-apps", 24, "synthetic apps sampled for the -census comparison (0 = all)")
		cinstrs = flag.Uint64("census-instrs", 1_000_000, "instructions per synthetic app in the -census comparison")
		reuse   = flag.Bool("reuse", false, "print the taken-PC reuse-distance profile")
		dump    = flag.Int("dump", 0, "print the first N records")
	)
	flag.Parse()

	var tr *trace.Memory
	switch {
	case *in != "":
		format, err := ingest.ParseFormat(*from)
		if err != nil {
			fatal(err)
		}
		o, err := ingest.Open(*in, format)
		if err != nil {
			fatal(err)
		}
		defer o.Close()
		tr, err = trace.Collect(o.Name(), o.Open())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ingested %s as %s\n", *in, o.Format)
		if st := o.ChampSimStats; st != nil {
			fmt.Printf("champsim: %d instructions, %d branches (%d unclassifiable), not-taken targets: %d memoized / %d fallthrough\n",
				st.Instructions, st.Branches, st.Other, st.NotTakenMemo, st.NotTakenFall)
		}
		if st := o.PerfStats; st != nil {
			fmt.Printf("perf: %d lines, %d samples, %d entries (%d skipped, %d untyped)\n",
				st.Lines, st.Samples, st.Entries, st.Skipped, st.Untyped)
		}
	case *appName != "":
		app, err := pdedesim.AppByName(*appName)
		if err != nil {
			fatal(err)
		}
		tr, err = pdedesim.BuildTrace(app, *instrs)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -app or -i (see -h)"))
	}

	fmt.Printf("trace %s: %d records, %d instructions\n", tr.TraceName, len(tr.Records), tr.Instructions())

	if *out != "" {
		codec := *convert
		if codec == "" {
			if strings.HasSuffix(*out, ".pdtz") {
				codec = "pdtz"
			} else {
				codec = "pdt"
			}
		}
		//pdede:raw-write-ok traces stream at paper scale; buffering for an atomic rename would need the whole file in memory
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		switch codec {
		case "pdt":
			err = trace.Write(f, tr.TraceName, tr.Open())
		case "pdtz":
			err = trace.WritePdtz(f, tr.TraceName, tr.Open())
		default:
			err = fmt.Errorf("unknown -convert codec %q (want pdt or pdtz)", codec)
		}
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%s, %.1f MB, %.2f bytes/record)\n",
			*out, codec, float64(st.Size())/1e6, float64(st.Size())/float64(len(tr.Records)))
	}

	if *dump > 0 {
		n := *dump
		if n > len(tr.Records) {
			n = len(tr.Records)
		}
		for i := 0; i < n; i++ {
			b := tr.Records[i]
			fmt.Printf("%6d %-14s pc=%v -> %v taken=%v block=%d\n",
				i, b.Kind, b.PC, b.Target, b.Taken, b.BlockLen)
		}
	}

	if *stats {
		c, err := analysis.Characterize(tr.Open())
		if err != nil {
			fatal(err)
		}
		tg, rg, pg, of := c.UniqueShare()
		fmt.Printf(`
dynamic branches      %d (taken %.1f%%)
static branch PCs     %d (taken %d)
class mix (taken)     cond %.1f%%  uncond %.1f%%  indirect %.1f%%  return %.1f%%
unique targets        %d (%.1f%% of taken PCs)
unique regions        %d (%.3f%%)
unique pages          %d (%.2f%%)
unique offsets        %d (%.1f%%)
targets per page      %.1f
targets per region    %.0f
same-page (dynamic)   %.1f%%
`,
			c.DynBranches, 100*c.DynTakenRate(),
			c.StaticPCs, c.StaticTakenPCs,
			100*c.ClassShare(isa.ClassCondDirect), 100*c.ClassShare(isa.ClassUncondDirect),
			100*c.ClassShare(isa.ClassIndirect), 100*c.ClassShare(isa.ClassReturn),
			c.UniqueTargets, 100*tg,
			c.UniqueRegions, 100*rg,
			c.UniquePages, 100*pg,
			c.UniqueOffsets, 100*of,
			c.TargetsPerPage(), c.TargetsPerRegion(),
			100*c.DynSamePageRate())
	}
	if *census {
		if err := runCensus(tr, *capps, *cinstrs); err != nil {
			fatal(err)
		}
	}
	if *reuse {
		u, err := analysis.ReuseProfile(tr.Open())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntaken-PC working set: %d\n", u.WorkingSet())
		fmt.Printf("stack distance P50/P90/P99: %d / %d / %d\n",
			u.Percentile(50), u.Percentile(90), u.Percentile(99))
		for _, c := range []int{1024, 2048, 4096, 8192, 16384} {
			fmt.Printf("LRU miss rate @%5d entries: %.1f%%\n", c, 100*u.MissRateAt(c))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdede-trace:", err)
	os.Exit(1)
}

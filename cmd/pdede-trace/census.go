package main

import (
	"fmt"
	"sort"

	pdedesim "repro"
	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/trace"
)

// censusMetrics are the Figure 3–8 population statistics that are
// length-independent (rates, shares and densities — absolute counts scale
// with trace length and would not compare across suites).
var censusMetrics = []struct {
	name string
	unit string
	get  func(c *analysis.Characterization) float64
}{
	{"dynamic taken rate", "%", func(c *analysis.Characterization) float64 { return 100 * c.DynTakenRate() }},
	{"cond share (taken)", "%", func(c *analysis.Characterization) float64 { return 100 * c.ClassShare(isa.ClassCondDirect) }},
	{"uncond share (taken)", "%", func(c *analysis.Characterization) float64 { return 100 * c.ClassShare(isa.ClassUncondDirect) }},
	{"indirect share (taken)", "%", func(c *analysis.Characterization) float64 { return 100 * c.ClassShare(isa.ClassIndirect) }},
	{"return share (taken)", "%", func(c *analysis.Characterization) float64 { return 100 * c.ClassShare(isa.ClassReturn) }},
	{"unique targets / taken PCs", "%", func(c *analysis.Characterization) float64 { t, _, _, _ := c.UniqueShare(); return 100 * t }},
	{"unique pages / targets", "%", func(c *analysis.Characterization) float64 { _, _, p, _ := c.UniqueShare(); return 100 * p }},
	{"unique regions / targets", "%", func(c *analysis.Characterization) float64 { _, r, _, _ := c.UniqueShare(); return 100 * r }},
	{"targets per page", "", func(c *analysis.Characterization) float64 { return c.TargetsPerPage() }},
	{"targets per region", "", func(c *analysis.Characterization) float64 { return c.TargetsPerRegion() }},
	{"same-page rate (dynamic)", "%", func(c *analysis.Characterization) float64 { return 100 * c.DynSamePageRate() }},
}

// runCensus re-runs the paper's branch-population census on tr and prints it
// next to the synthetic suite's distribution, as a markdown table ready for
// EXPERIMENTS.md. The suite side samples `apps` catalog applications (0 =
// all) at `instrs` instructions each.
func runCensus(tr *trace.Memory, apps int, instrs uint64) error {
	got, err := analysis.Characterize(tr.Open())
	if err != nil {
		return fmt.Errorf("census: characterizing %s: %w", tr.TraceName, err)
	}

	catalog := pdedesim.Catalog()
	if apps > 0 && apps < len(catalog) {
		// Evenly-strided sample keeps every category represented.
		sampled := make([]pdedesim.App, 0, apps)
		for i := 0; i < apps; i++ {
			sampled = append(sampled, catalog[i*len(catalog)/apps])
		}
		catalog = sampled
	}
	suite := make([]*analysis.Characterization, 0, len(catalog))
	for _, app := range catalog {
		t, err := pdedesim.BuildTrace(app, instrs)
		if err != nil {
			return fmt.Errorf("census: building %s: %w", app.Name, err)
		}
		c, err := analysis.Characterize(t.Open())
		if err != nil {
			return fmt.Errorf("census: characterizing %s: %w", app.Name, err)
		}
		suite = append(suite, c)
	}

	fmt.Printf("\npopulation census: %s vs %d-app synthetic suite (%d instrs/app)\n\n",
		tr.TraceName, len(suite), instrs)
	fmt.Printf("| %-26s | %9s | %9s | %9s | %9s |\n", "metric", tr.TraceName, "suite min", "suite med", "suite max")
	fmt.Printf("|%s|%s|%s|%s|%s|\n", dashes(28), dashes(11), dashes(11), dashes(11), dashes(11))
	for _, m := range censusMetrics {
		vals := make([]float64, len(suite))
		for i, c := range suite {
			vals[i] = m.get(c)
		}
		sort.Float64s(vals)
		fmt.Printf("| %-26s | %9s | %9s | %9s | %9s |\n",
			m.name,
			cell(m.get(got), m.unit),
			cell(vals[0], m.unit),
			cell(vals[len(vals)/2], m.unit),
			cell(vals[len(vals)-1], m.unit))
	}
	return nil
}

func cell(v float64, unit string) string {
	return fmt.Sprintf("%.1f%s", v, unit)
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// Command pdede-bench measures simulator throughput over a fixed, seeded
// workload matrix (every comparison BTB design × 4 catalog apps × both core
// models) and emits a schema-versioned JSON report. With -baseline it also
// compares the fresh measurements against a committed report and exits
// non-zero when any design's records/sec regressed beyond the tolerance —
// the CI gate that keeps the per-record simulation loop fast.
//
// Usage:
//
//	pdede-bench -o BENCH_PR3.json                 # measure, write report
//	pdede-bench -baseline BENCH_PR3.json          # measure, compare, gate
//	pdede-bench -baseline old.json -tolerance 8%  # custom tolerance
//	pdede-bench -baseline old.json -compare new.json  # compare two files
//	                                              # without running anything
//	pdede-bench -scaling -o BENCH.json            # also record the suite
//	                                              # runner's worker-scaling curve
//
// Exit codes: 0 pass, 1 regression, 2 usage or measurement error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perf"
)

func main() {
	var (
		out       = flag.String("o", "", "write the JSON report to this path (default: stdout when not comparing)")
		baseline  = flag.String("baseline", "", "baseline report to compare against; regressions exit 1")
		compare   = flag.String("compare", "", "compare this existing report against -baseline instead of measuring")
		tolerance = flag.String("tolerance", "8%", "allowed per-design records/sec loss (e.g. 8%, 0.08)")
		apps      = flag.Int("apps", 4, "catalog applications in the matrix (sampled evenly)")
		instrs    = flag.Uint64("instrs", 1_000_000, "trace length per app")
		warmup    = flag.Uint64("warmup", 400_000, "warmup instructions (unmeasured but simulated)")
		reps      = flag.Int("reps", 3, "repetitions per matrix cell (fastest wins)")
		scaling   = flag.Bool("scaling", false, "also measure the suite runner's worker-scaling curve (1/2/4/8 workers) and record it in the report")
		quiet     = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "pdede-bench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if *compare != "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "pdede-bench: -compare requires -baseline")
		os.Exit(2)
	}

	tol, err := perf.ParseTolerance(*tolerance)
	if err != nil {
		fatal(err)
	}

	var report *perf.Report
	if *compare != "" {
		report, err = perf.LoadReport(*compare)
		if err != nil {
			fatal(err)
		}
	} else {
		spec := perf.DefaultSpec()
		spec.Apps = *apps
		spec.TotalInstrs = *instrs
		spec.WarmupInstrs = *warmup
		spec.Reps = *reps
		var progress perf.Progress
		if !*quiet {
			progress = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
		}
		report, err = perf.Run(spec, progress)
		if err != nil {
			fatal(err)
		}
		if *scaling {
			report.Scaling, err = perf.RunScaling(perf.DefaultScalingSpec(), progress)
			if err != nil {
				fatal(err)
			}
		}
	}

	switch {
	case *out != "":
		if err := perf.SaveReport(*out, report); err != nil {
			fatal(err)
		}
	case *compare == "" && *baseline == "":
		if err := perf.WriteJSON(os.Stdout, report); err != nil {
			fatal(err)
		}
	}

	if *baseline == "" {
		return
	}
	base, err := perf.LoadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	cmp, err := perf.Compare(base, report, tol)
	if err != nil {
		fatal(err)
	}
	fmt.Print(cmp.Table())
	if err := cmp.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "pdede-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\npdede-bench: no design regressed beyond %.0f%% tolerance\n", 100*tol)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdede-bench:", err)
	os.Exit(2)
}

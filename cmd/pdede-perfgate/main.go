// pdede-perfgate makes the Go compiler's escape/inline/bounds-check
// decisions over the hot packages a checked, versioned contract (the
// perfbudget pass; see DESIGN.md §6.3).
//
// It runs `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'` over the
// packages budgeted in PERF_BUDGET.json, parses the diagnostics into a
// per-function model, and reports:
//
//   - every `//pdede:noalloc` function containing a heap-escape site;
//   - every `//pdede:inline` function the compiler refuses to inline
//     (with the compiler's reason);
//   - every `//pdede:nobce` function containing a residual bounds check;
//   - every package whose total heap-escape sites or residual bounds
//     checks exceed its budgeted cap;
//   - with -drift, every package whose measured counts no longer match
//     the committed caps at all (a stale budget hides regressions).
//
// Usage:
//
//	pdede-perfgate [flags]
//
//	-C dir        module to gate (default: current directory)
//	-budget file  budget file (default PERF_BUDGET.json, relative to -C)
//	-json         emit findings to stdout as a JSON array matching
//	              pdede-lint's {file, line, col, analyzer, message} schema
//	-drift        fail on budget drift in either direction
//	-update-budget
//	              regenerate the budget file from the measured counts
//	              (directive contracts are still enforced)
//
// Exit status: 0 clean, 1 findings, 2 operational error — the same
// contract as pdede-lint, so CI treats both gates identically.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/analysis/perfbudget"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("pdede-perfgate", flag.ContinueOnError)
	flags.SetOutput(stderr)
	dir := flags.String("C", "", "change to this directory before gating")
	budgetFile := flags.String("budget", "PERF_BUDGET.json", "budget file (relative paths resolve under -C)")
	asJSON := flags.Bool("json", false, "emit findings to stdout as a JSON array")
	drift := flags.Bool("drift", false, "fail when measured counts differ from the budget in either direction")
	update := flags.Bool("update-budget", false, "regenerate the budget file from the measured counts")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if flags.NArg() != 0 {
		fmt.Fprintf(stderr, "pdede-perfgate: unexpected arguments %v (the package scope comes from the budget file)\n", flags.Args())
		return 2
	}

	moduleDir := *dir
	if moduleDir == "" {
		moduleDir = "."
	}
	budgetPath := *budgetFile
	if !filepath.IsAbs(budgetPath) {
		budgetPath = filepath.Join(moduleDir, budgetPath)
	}

	// The budget file defines the gate's package scope; before the first
	// -update-budget commit, the default hot-package set seeds it.
	var budget *perfbudget.Budget
	pkgs := perfbudget.DefaultPackages
	switch b, err := perfbudget.LoadBudget(budgetPath); {
	case err == nil:
		budget = b
		pkgs = b.PackageList()
	case errors.Is(err, fs.ErrNotExist) && *update:
		// First run: seed the scope with the default hot-package set.
	case errors.Is(err, fs.ErrNotExist):
		fmt.Fprintf(stderr, "pdede-perfgate: %v (run -update-budget to create it)\n", err)
		return 2
	default:
		fmt.Fprintln(stderr, "pdede-perfgate:", err)
		return 2
	}

	goVersion, err := perfbudget.GoVersion(moduleDir)
	if err != nil {
		fmt.Fprintln(stderr, "pdede-perfgate:", err)
		return 2
	}
	if budget != nil && budget.Go != perfbudget.MinorVersion(goVersion) {
		fmt.Fprintf(stderr, "pdede-perfgate: note: budget generated with %s, gating with %s — counts may differ across compiler releases\n",
			budget.Go, perfbudget.MinorVersion(goVersion))
	}

	srcs, err := perfbudget.ScanPackages(moduleDir, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "pdede-perfgate:", err)
		return 2
	}
	diags, err := perfbudget.Compile(moduleDir, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "pdede-perfgate:", err)
		return 2
	}

	if *update {
		budget = perfbudget.UpdateBudget(diags, pkgs, goVersion)
		if err := budget.Save(budgetPath); err != nil {
			fmt.Fprintln(stderr, "pdede-perfgate:", err)
			return 2
		}
		fmt.Fprintf(stderr, "pdede-perfgate: wrote %s (%d packages, %s)\n", budgetPath, len(pkgs), budget.Go)
	}

	findings := perfbudget.Check(diags, srcs, budget, perfbudget.CheckOptions{
		BudgetFile: *budgetFile,
		Drift:      *drift && !*update, // a freshly regenerated budget cannot drift
	})

	if *asJSON {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "pdede-perfgate:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stderr, "%s:%d:%d: %s (perfbudget/%s)\n", f.File, f.Line, f.Col, f.Message, f.Check)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "pdede-perfgate: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// jsonDiag mirrors pdede-lint's -json wire form so the CI annotation
// tooling consumes both gates with one jq expression. The analyzer field
// carries the violated check, namespaced under perfbudget/.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []perfbudget.Finding) error {
	out := make([]jsonDiag, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonDiag{
			File:     f.File,
			Line:     f.Line,
			Col:      f.Col,
			Analyzer: "perfbudget/" + f.Check,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/lintkit/linttest"
)

// cleanSeed holds every contract it declares.
const cleanSeed = `package btb

// Sum is the hot accumulation kernel.
//
//pdede:noalloc
//pdede:nobce
func Sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}
`

// escapeSeed is cleanSeed with one injected heap escape: the corruption
// seed proving the gate's exit code flips from 0 to 1.
const escapeSeed = `package btb

var sink *int

// Sum is the hot accumulation kernel.
//
//pdede:noalloc
//pdede:nobce
func Sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	sink = &t
	return t
}
`

func writeGatedModule(t *testing.T, src string) string {
	t.Helper()
	return linttest.WriteModule(t, map[string]string{
		"go.mod":              "module fix\n\ngo 1.23\n",
		"internal/btb/btb.go": src,
		"PERF_BUDGET.json":    `{"schema": 1, "go": "go1.24", "packages": {"internal/btb": {"escapes": 0, "bounds_checks": 0}}}` + "\n",
	})
}

// TestExitCodeFlip is the corruption-injection proof: the same module
// gates clean at exit 0, then exits 1 once a single escape is injected
// into a //pdede:noalloc function (caught by both the directive and the
// package cap).
func TestExitCodeFlip(t *testing.T) {
	var out, errb bytes.Buffer

	clean := writeGatedModule(t, cleanSeed)
	if code := run([]string{"-C", clean}, &out, &errb); code != 0 {
		t.Fatalf("clean module: exit %d, stderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	dirty := writeGatedModule(t, escapeSeed)
	if code := run([]string{"-C", dirty}, &out, &errb); code != 1 {
		t.Fatalf("injected escape: exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	text := errb.String()
	for _, want := range []string{
		"heap escape in //pdede:noalloc function Sum",
		"(perfbudget/noalloc)",
		"exceed the budgeted 0",
		"(perfbudget/budget)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stderr missing %q:\n%s", want, text)
		}
	}
}

// TestJSONOutput pins the -json wire form to pdede-lint's schema.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	dirty := writeGatedModule(t, escapeSeed)
	if code := run([]string{"-C", dirty, "-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("no findings in JSON output")
	}
	var sawNoalloc bool
	for _, d := range diags {
		if !strings.HasPrefix(d.Analyzer, "perfbudget/") {
			t.Errorf("analyzer %q not namespaced under perfbudget/", d.Analyzer)
		}
		if d.Analyzer == "perfbudget/noalloc" {
			sawNoalloc = true
			if d.File != "internal/btb/btb.go" || d.Line == 0 {
				t.Errorf("noalloc finding poorly anchored: %+v", d)
			}
		}
	}
	if !sawNoalloc {
		t.Errorf("no perfbudget/noalloc finding: %+v", diags)
	}
}

// TestUpdateBudgetRoundTrip proves -update-budget writes a budget the next
// plain run (and a -drift run) accepts.
func TestUpdateBudgetRoundTrip(t *testing.T) {
	dir := linttest.WriteModule(t, map[string]string{
		"go.mod":              "module fix\n\ngo 1.23\n",
		"internal/btb/btb.go": cleanSeed,
	})

	var out, errb bytes.Buffer
	// No budget yet, no -update-budget: operational error.
	if code := run([]string{"-C", dir}, &out, &errb); code != 2 {
		t.Fatalf("missing budget: exit %d, want 2; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-update-budget") {
		t.Errorf("missing-budget error does not point at -update-budget:\n%s", errb.String())
	}

	// The default package scope does not exist in this module, so seed the
	// scope with a budget naming the right package, then regenerate it.
	budget := filepath.Join(dir, "PERF_BUDGET.json")
	seed := `{"schema": 1, "go": "go1.24", "packages": {"internal/btb": {"escapes": 99, "bounds_checks": 99}}}` + "\n"
	if err := os.WriteFile(budget, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-C", dir, "-update-budget"}, &out, &errb); code != 0 {
		t.Fatalf("-update-budget: exit %d, stderr:\n%s", code, errb.String())
	}

	data, err := os.ReadFile(budget)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "99") {
		t.Errorf("budget still carries the seeded slack:\n%s", data)
	}

	// The regenerated budget passes a strict drift check.
	errb.Reset()
	if code := run([]string{"-C", dir, "-drift"}, &out, &errb); code != 0 {
		t.Fatalf("post-update -drift: exit %d, stderr:\n%s", code, errb.String())
	}

	// And the seeded slack would have failed it.
	if err := os.WriteFile(budget, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-C", dir, "-drift"}, &out, &errb); code != 1 {
		t.Fatalf("slack under -drift: exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "(perfbudget/drift)") {
		t.Errorf("no drift finding:\n%s", errb.String())
	}
}

// TestBadUsage covers the operational-error paths that never reach a
// compile.
func TestBadUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"positional"}, &out, &errb); code != 2 {
		t.Errorf("positional args: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "package scope comes from the budget file") {
		t.Errorf("usage error unexplained:\n%s", errb.String())
	}
}

package main

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/perfbudget"
)

// These tests pin the documentation to the gate's directive vocabulary and
// package scope, in the same style as cmd/pdede-lint's docs tests: adding,
// renaming, or removing a directive without updating DESIGN.md §6.3 and
// the README "Performance contracts" section fails the build.

func directiveNames() []string {
	return []string{perfbudget.DirNoalloc, perfbudget.DirInline, perfbudget.DirNobce}
}

// section returns the lines of doc between the heading line containing
// marker and the next heading of the same or higher level.
func section(t *testing.T, path, marker string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	lines := strings.Split(string(data), "\n")
	start := -1
	var level string
	for i, l := range lines {
		if start == -1 {
			if strings.HasPrefix(l, "#") && strings.Contains(l, marker) {
				start = i + 1
				level = l[:strings.IndexByte(l, ' ')]
			}
			continue
		}
		if strings.HasPrefix(l, "#") {
			h := l[:strings.IndexByte(l+" ", ' ')]
			if len(h) <= len(level) {
				return lines[start:i]
			}
		}
	}
	if start == -1 {
		t.Fatalf("%s: no heading contains %q", path, marker)
	}
	return lines[start:]
}

// TestDesignTableMatchesDirectives asserts the §6.3 directive table lists
// exactly the gate's directives, in declaration order.
func TestDesignTableMatchesDirectives(t *testing.T) {
	row := regexp.MustCompile("^\\| `//pdede:([a-z]+)` \\|")
	var documented []string
	for _, l := range section(t, "../../DESIGN.md", "6.3 Performance contracts") {
		if m := row.FindStringSubmatch(l); m != nil {
			documented = append(documented, m[1])
		}
	}
	want := directiveNames()
	if strings.Join(documented, ",") != strings.Join(want, ",") {
		t.Errorf("DESIGN.md §6.3 directive table is out of sync:\n  documented: %v\n  gate: %v",
			documented, want)
	}
}

// TestReadmeMatchesDirectives asserts the README "Performance contracts"
// section names every directive (as `//pdede:<name>`) and no stale ones.
func TestReadmeMatchesDirectives(t *testing.T) {
	dir := regexp.MustCompile("`//pdede:([a-z]+)`")
	seen := map[string]bool{}
	for _, l := range section(t, "../../README.md", "Performance contracts") {
		for _, m := range dir.FindAllStringSubmatch(l, -1) {
			seen[m[1]] = true
		}
	}
	var documented []string
	for name := range seen {
		documented = append(documented, name)
	}
	sort.Strings(documented)
	want := directiveNames()
	sort.Strings(want)
	if strings.Join(documented, ",") != strings.Join(want, ",") {
		t.Errorf("README \"Performance contracts\" section is out of sync:\n  documented: %v\n  gate: %v",
			documented, want)
	}
}

// TestDesignNamesBudgetedPackages asserts §6.3 spells out the default
// hot-package scope the first -update-budget seeds.
func TestDesignNamesBudgetedPackages(t *testing.T) {
	text := strings.Join(section(t, "../../DESIGN.md", "6.3 Performance contracts"), "\n")
	var short []string
	for _, pkg := range perfbudget.DefaultPackages {
		short = append(short, strings.TrimPrefix(pkg, "internal/"))
	}
	want := "`internal/{" + strings.Join(short, ",") + "}`"
	if !strings.Contains(text, want) {
		t.Errorf("DESIGN.md §6.3 does not name the budgeted package set %s", want)
	}
}

// Command pdede-sim runs one application through one or more BTB designs
// and prints IPC/MPKI metrics.
//
// Usage:
//
//	pdede-sim -app Server-oltp-primary -designs baseline,pdede-me
//	pdede-sim -list                      # list catalog applications
//	pdede-sim -app Browser-imaging -designs all -instrs 5000000
//
// Designs: baseline, baseline-8k, dedup, pdede, pdede-mt, pdede-me,
// shotgun, twolevel, perfect, all.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	pdedesim "repro"
)

func main() {
	var (
		appName = flag.String("app", "Server-oltp-primary", "catalog application name")
		appFile = flag.String("app-file", "", "JSON application config (overrides -app)")
		designs = flag.String("designs", "baseline,pdede,pdede-mt,pdede-me", "comma-separated designs (or 'all')")
		instrs  = flag.Uint64("instrs", 3_500_000, "trace length in instructions")
		warmup  = flag.Uint64("warmup", 1_500_000, "warmup instructions (unmeasured)")
		list    = flag.Bool("list", false, "list catalog applications and exit")
		perfDir = flag.Bool("perfect-direction", false, "use a perfect direction predictor (§5.5)")
		check   = flag.Bool("check", false, "differential-check each design against its reference oracle instead of simulating")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the simulation context; the run loop notices
	// within a few thousand records and the command exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		apps := pdedesim.Catalog()
		sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
		for _, a := range apps {
			fmt.Printf("%-36s %-8s %6d static branches\n", a.Name, a.Category, a.StaticBranches)
		}
		return
	}

	var app pdedesim.App
	var err error
	if *appFile != "" {
		app, err = pdedesim.LoadApp(*appFile)
	} else {
		app, err = pdedesim.AppByName(*appName)
	}
	if err != nil {
		fatal(err)
	}
	opts := pdedesim.DefaultSimOptions()
	opts.TotalInstrs = *instrs
	opts.WarmupInstrs = *warmup
	opts.PerfectDirection = *perfDir

	available := map[string]func() (pdedesim.TargetPredictor, error){
		"baseline":    pdedesim.Baseline(4096),
		"baseline-8k": pdedesim.Baseline(8192),
		"dedup":       pdedesim.DedupOnly(),
		"pdede":       pdedesim.PDedeDefault(),
		"pdede-mt":    pdedesim.PDedeMultiTarget(),
		"pdede-me":    pdedesim.PDedeMultiEntry(),
		"shotgun":     pdedesim.ShotgunBTB(),
		"twolevel":    pdedesim.TwoLevel(256, pdedesim.PDedeMultiEntry()),
		"perfect":     pdedesim.PerfectBTB(),
	}
	order := []string{"baseline", "baseline-8k", "dedup", "pdede", "pdede-mt", "pdede-me", "shotgun", "twolevel", "perfect"}

	var picked []string
	if *designs == "all" {
		picked = order
	} else {
		for _, d := range strings.Split(*designs, ",") {
			d = strings.TrimSpace(d)
			if _, ok := available[d]; !ok {
				fatal(fmt.Errorf("unknown design %q (have: %s)", d, strings.Join(order, ", ")))
			}
			picked = append(picked, d)
		}
	}

	if *check {
		runCheck(ctx, app, available, picked, *instrs)
		return
	}

	fmt.Printf("app %s (%s, %d static branches), %d instrs (%d warmup)\n\n",
		app.Name, app.Category, app.StaticBranches, *instrs, *warmup)
	tr, err := pdedesim.BuildTrace(app, opts.TotalInstrs)
	if err != nil {
		fatal(err)
	}

	var base *pdedesim.Result
	fmt.Printf("%-12s %8s %10s %10s %10s %11s %9s\n",
		"design", "IPC", "BTB-MPKI", "dir-MPKI", "fe-stall%", "btb-stall%", "vs-first")
	for _, name := range picked {
		res, err := pdedesim.SimulateTraceContext(ctx, app, tr, available[name], opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatal(errors.New("interrupted"))
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		vs := "-"
		if base == nil {
			base = res
		} else {
			vs = fmt.Sprintf("%+.1f%%", 100*res.Speedup(base))
		}
		fmt.Printf("%-12s %8.3f %10.3f %10.3f %9.1f%% %10.1f%% %9s\n",
			name, res.IPC(), res.BTBMPKI(), res.DirMPKI(),
			100*res.FrontendStallFrac(), 100*res.BTBResteerShareOfStalls(), vs)
	}
}

// runCheck drives each picked design and its matching unbounded oracle in
// lockstep over the app's trace, printing the divergence breakdown. Legal
// divergences (capacity, aliasing, hysteresis) are informational; a semantic
// divergence or an audit failure exits non-zero.
func runCheck(ctx context.Context, app pdedesim.App, available map[string]func() (pdedesim.TargetPredictor, error), picked []string, instrs uint64) {
	fmt.Printf("differential check: app %s, %d instrs\n\n", app.Name, instrs)
	failed := false
	for _, name := range picked {
		rep, err := pdedesim.CheckDesign(ctx, app, available[name], instrs, pdedesim.DiffOptions{})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fatal(errors.New("interrupted"))
			}
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("%-12s %s\n", name, rep.Summary())
		if err := rep.Err(); err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "pdede-sim: %v\n", err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nall designs clean: every divergence classified as a legal capacity/aliasing effect")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdede-sim:", err)
	os.Exit(1)
}
